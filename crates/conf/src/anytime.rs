//! Confidence computation for *unsafe* queries: exact read-once evaluation
//! with an anytime dissociation-bounds fallback.
//!
//! Safe plans do not exist for queries without a hierarchical FD-reduct —
//! exact confidence computation is #P-hard in general. On concrete data,
//! however, the per-tuple DNF lineage often still factors read-once
//! ([`pdb_lineage::factorize`]), in which case the probability is exact and
//! linear. When it does not, dissociation yields deterministic `[lo, hi]`
//! bounds (Gatterbauer & Suciu, arXiv:1412.1069) that an anytime Shannon
//! refinement loop tightens monotonically until they are `eps`-wide, the
//! formula is exhausted (bounds collapse to the exact value), or the query
//! governor's deadline fires — in which case the *best bounds so far* are
//! returned instead of an error. Cancellation still aborts.
//!
//! The policy knob is [`ApproxPolicy`]: `Exact` admits only the exact paths
//! (safe plan upstream, read-once here) and fails on a blocked formula;
//! `Bounds { eps }` falls through to dissociation. The refinement loop is
//! deterministic given its seed at every `SPROUT_THREADS` value: bags fan
//! out on the pool in task order and each bag's evaluation is sequential
//! with a per-bag seeded tie-breaker.

use std::collections::BTreeMap;

use pdb_exec::Annotated;
use pdb_govern::{Counter, ExecContext, SproutError, Stage};
use pdb_lineage::readonce::{factorize, Factorization};
use pdb_lineage::{Clause, Dnf};
use pdb_par::Pool;
use pdb_storage::{Tuple, Variable};

use crate::error::{ConfError, ConfResult};

/// How confidences of a query without a safe plan may be computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ApproxPolicy {
    /// Exact answers only: safe plan, or read-once factorization of the
    /// lineage. A blocked (provably not read-once) formula is an error.
    Exact,
    /// Exact where possible, dissociation bounds otherwise: refinement stops
    /// once `hi − lo ≤ eps` (use `eps = 0.0` to run to exhaustion or the
    /// deadline).
    Bounds {
        /// Target bound width.
        eps: f64,
    },
}

impl std::fmt::Display for ApproxPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApproxPolicy::Exact => write!(f, "exact"),
            ApproxPolicy::Bounds { eps } => write!(f, "bounds(eps={eps})"),
        }
    }
}

/// How one answer tuple's confidence was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfMethod {
    /// The lineage factored read-once: `lo == hi` is the exact probability.
    ReadOnce,
    /// Dissociation bounds, refined by the anytime loop.
    Dissociation,
}

/// One answer tuple with its confidence bracket.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleConfidence {
    /// The answer tuple.
    pub tuple: Tuple,
    /// Lower bound on the confidence (equal to `hi` on exact paths).
    pub lo: f64,
    /// Upper bound on the confidence.
    pub hi: f64,
    /// Which evaluator produced the bracket.
    pub method: ConfMethod,
    /// Refinement iterations spent on this tuple (0 on exact paths).
    pub rounds: usize,
}

impl TupleConfidence {
    /// Bracket width `hi − lo` (0 on exact paths).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Point estimate: the exact value when the bracket is closed, the
    /// midpoint otherwise.
    pub fn value(&self) -> f64 {
        if self.lo == self.hi {
            self.lo
        } else {
            0.5 * (self.lo + self.hi)
        }
    }
}

/// The result of unsafe-query confidence computation: every distinct answer
/// tuple with its bracket, ordered by tuple.
pub type ApproxResult = Vec<TupleConfidence>;

/// Default per-tuple frontier memory budget: 16 MiB of Shannon-expansion
/// leaves. Refinement that would grow past this degrades to the bounds
/// reached so far instead of allocating further.
pub const DEFAULT_FRONTIER_BUDGET: usize = 16 << 20;

/// Configuration of the anytime evaluator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnytimeConfig {
    /// Exact-only or bounds fallback.
    pub policy: ApproxPolicy,
    /// Seed of the deterministic refinement tie-breaker.
    pub seed: u64,
    /// Optional cap on refinement iterations per tuple (`None` = until the
    /// width target, exhaustion, or the deadline). Used by the benchmarks to
    /// chart width against iteration count.
    pub max_rounds: Option<usize>,
    /// Per-tuple memory budget for the Shannon-expansion frontier, in
    /// estimated resident bytes (`None` = unbounded). An expansion that
    /// would exceed it is not performed: refinement stops and the bounds
    /// reached so far — wider but valid — are returned. The check is
    /// structural (leaf sizes, not wall clock), so results stay
    /// bitwise-identical at every thread count. Frontier bytes are also
    /// accounted against (and released back to) the governor's arena
    /// budget, whose exhaustion degrades the same way.
    pub frontier_budget: Option<usize>,
}

impl AnytimeConfig {
    /// A configuration with the given policy, seed 0, no round cap and the
    /// default frontier budget ([`DEFAULT_FRONTIER_BUDGET`]).
    pub fn new(policy: ApproxPolicy) -> AnytimeConfig {
        AnytimeConfig {
            policy,
            seed: 0,
            max_rounds: None,
            frontier_budget: Some(DEFAULT_FRONTIER_BUDGET),
        }
    }

    /// Sets the refinement seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps refinement iterations per tuple.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = Some(rounds);
        self
    }

    /// Sets the per-tuple frontier memory budget in bytes.
    pub fn with_frontier_budget(mut self, bytes: usize) -> Self {
        self.frontier_budget = Some(bytes);
        self
    }

    /// Removes the frontier memory budget (the pre-PR 9 behaviour: the
    /// frontier rides the governor's global budget only).
    pub fn with_unbounded_frontier(mut self) -> Self {
        self.frontier_budget = None;
        self
    }
}

/// Computes per-tuple confidence brackets from lineage alone — no signature
/// required, which is the point: this is the evaluator for queries *without*
/// a safe plan. Bags of duplicate answer tuples fan out on `pool` in task
/// order; results are bitwise-identical at every pool size.
///
/// # Errors
/// Fails with [`ConfError::NotReadOnce`] under [`ApproxPolicy::Exact`] when a
/// tuple's lineage is provably not read-once, and propagates governor
/// cancellation. A deadline during bounds refinement is *not* an error: the
/// best bounds so far are returned.
pub fn anytime_confidences_ctx(
    answer: &Annotated,
    config: &AnytimeConfig,
    pool: &Pool,
    ctx: &ExecContext,
) -> ConfResult<ApproxResult> {
    // Bag construction, exactly as the brute-force oracle does it: one DNF
    // clause per derivation row, variable marginals read off the lineage
    // annotations.
    let mut probs: BTreeMap<Variable, f64> = BTreeMap::new();
    let mut lineages: BTreeMap<Tuple, Dnf> = BTreeMap::new();
    for row in answer.iter() {
        for (var, p) in row.lineage {
            probs.entry(*var).or_insert(*p);
        }
        let clause = Clause::new(row.lineage.iter().map(|(v, _)| *v));
        lineages
            .entry(row.data_tuple())
            .or_insert_with(Dnf::empty)
            .add_clause(clause);
    }
    let bags: Vec<(Tuple, Dnf)> = lineages.into_iter().collect();
    let pool = pool.for_items(bags.len());
    pool.try_map(&bags, |i, (tuple, dnf)| {
        match ctx.checkpoint(Stage::Confidence, "conf.bag", i) {
            Ok(()) => {}
            Err(e @ SproutError::DeadlineExceeded { .. }) => {
                return match config.policy {
                    // Exact paths cannot degrade: the deadline is an error,
                    // like in every other exact evaluator.
                    ApproxPolicy::Exact => Err(ConfError::Governed(e)),
                    // Bounds mode honours the anytime contract even when the
                    // deadline beats the bag to its first checkpoint: the
                    // single-shot crude bounds are the best bounds so far.
                    ApproxPolicy::Bounds { .. } => {
                        let (lo, hi) = crude_bounds(dnf, &probs);
                        Ok(TupleConfidence {
                            tuple: tuple.clone(),
                            lo,
                            hi,
                            method: ConfMethod::Dissociation,
                            rounds: 0,
                        })
                    }
                };
            }
            Err(e) => return Err(ConfError::Governed(e)),
        }
        let bag_seed = config
            .seed
            .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        evaluate_bag(tuple, dnf, &probs, config, bag_seed, ctx)
    })
    .map_err(|f| ConfError::from_task_failure(Stage::Confidence, f))
}

/// Evaluates one bag: read-once if the lineage factors, dissociation bounds
/// otherwise (policy permitting).
fn evaluate_bag(
    tuple: &Tuple,
    dnf: &Dnf,
    probs: &BTreeMap<Variable, f64>,
    config: &AnytimeConfig,
    seed: u64,
    ctx: &ExecContext,
) -> ConfResult<TupleConfidence> {
    match factorize(dnf) {
        Factorization::Constant(b) => Ok(exact_result(tuple, if b { 1.0 } else { 0.0 })),
        Factorization::ReadOnce(tree) => Ok(exact_result(tuple, tree.probability(probs))),
        Factorization::Blocked(_) => match config.policy {
            ApproxPolicy::Exact => Err(ConfError::NotReadOnce(format!(
                "lineage of {tuple} ({} clauses over {} variables) is not read-once",
                dnf.len(),
                dnf.variables().len()
            ))),
            ApproxPolicy::Bounds { eps } => {
                dissociation_bounds(tuple, dnf, probs, eps, config, seed, ctx)
            }
        },
    }
}

fn exact_result(tuple: &Tuple, p: f64) -> TupleConfidence {
    TupleConfidence {
        tuple: tuple.clone(),
        lo: p,
        hi: p,
        method: ConfMethod::ReadOnce,
        rounds: 0,
    }
}

/// One open or closed leaf of the Shannon refinement tree.
#[derive(Debug)]
struct BoundsLeaf {
    /// Product of the branch probabilities on the path from the root.
    mass: f64,
    /// The cofactor formula at this leaf.
    dnf: Dnf,
    /// Valid bounds on the cofactor's probability.
    lo: f64,
    hi: f64,
    /// Whether the leaf can be refined further (`false` once exact).
    open: bool,
}

/// Estimated resident bytes of one frontier leaf holding `dnf` — what the
/// frontier budget and the governor's arena accounting charge per leaf.
fn leaf_bytes(dnf: &Dnf) -> usize {
    let clause_bytes: usize = dnf
        .clauses()
        .iter()
        .map(|c| std::mem::size_of::<Clause>() + std::mem::size_of_val(c.vars()))
        .sum();
    std::mem::size_of::<BoundsLeaf>() + clause_bytes
}

/// Anytime dissociation bounds for a formula that does not factor read-once.
///
/// The loop maintains a Shannon expansion frontier: the global bracket is
/// `Σ massᵢ · [loᵢ, hiᵢ]` over the leaves. Each iteration splits the open
/// leaf with the largest bracket contribution on its most frequent variable
/// (seeded tie-break), re-bounding both cofactors — read-once cofactors
/// close exactly. The reported bracket is clamped against its predecessor,
/// so it tightens monotonically. A deadline mid-refinement returns the best
/// bracket so far; cancellation aborts.
#[allow(clippy::too_many_arguments)]
fn dissociation_bounds(
    tuple: &Tuple,
    dnf: &Dnf,
    probs: &BTreeMap<Variable, f64>,
    eps: f64,
    config: &AnytimeConfig,
    seed: u64,
    ctx: &ExecContext,
) -> ConfResult<TupleConfidence> {
    let mut rng = SplitMix64::new(seed);
    let (lo0, hi0) = crude_bounds(dnf, probs);
    let mut leaves = vec![BoundsLeaf {
        mass: 1.0,
        dnf: dnf.clone(),
        lo: lo0,
        hi: hi0,
        open: true,
    }];
    ctx.tally(Counter::FrontierNodes, 1); // the root leaf
    let mut global_lo = lo0;
    let mut global_hi = hi0;
    let mut rounds = 0usize;
    // The frontier's resident bytes: charged against the per-tuple budget
    // and the governor's arena accounting, released as leaves are replaced.
    // Budget exhaustion is not an error here — the bounds reached so far are
    // valid, just wider; refinement simply stops growing the frontier.
    let mut frontier_bytes = leaf_bytes(dnf);
    // A failed initial account is not an error: refinement is skipped and
    // the crude bounds stand (`account` charges even on failure, so the
    // unconditional release below is owed either way).
    if ctx.account(Stage::Confidence, frontier_bytes).is_ok() {
        loop {
            if global_hi - global_lo <= eps {
                break;
            }
            if let Some(cap) = config.max_rounds {
                if rounds >= cap {
                    break;
                }
            }
            // Open leaf with the largest contribution to the bracket width; the
            // frontier is scanned in insertion order, so ties resolve to the
            // earliest leaf — deterministic.
            let mut best: Option<(usize, f64)> = None;
            for (i, leaf) in leaves.iter().enumerate() {
                if !leaf.open {
                    continue;
                }
                let w = leaf.mass * (leaf.hi - leaf.lo);
                if best.is_none_or(|(_, bw)| w > bw) {
                    best = Some((i, w));
                }
            }
            let Some((idx, _)) = best else {
                // Exhausted: every leaf is exact, the bracket is the exact value.
                break;
            };
            match ctx.checkpoint(Stage::Confidence, "conf.bounds", rounds) {
                Ok(()) => {}
                Err(SproutError::DeadlineExceeded { .. }) => break,
                Err(e) => {
                    ctx.release(frontier_bytes);
                    return Err(ConfError::Governed(e));
                }
            }

            // Condition on the most frequent variable of the chosen cofactor;
            // equally frequent candidates are broken by the seeded generator.
            let var = {
                let leaf = &leaves[idx];
                let mut counts: BTreeMap<Variable, usize> = BTreeMap::new();
                for clause in leaf.dnf.clauses() {
                    for v in clause.vars() {
                        *counts.entry(*v).or_insert(0) += 1;
                    }
                }
                let max = counts.values().copied().max().unwrap_or(0);
                let candidates: Vec<Variable> = counts
                    .into_iter()
                    .filter(|(_, c)| *c == max)
                    .map(|(v, _)| v)
                    .collect();
                candidates[(rng.next() % candidates.len() as u64) as usize]
            };
            let p = probs.get(&var).copied().unwrap_or(0.0);

            // Build both cofactor leaves *before* touching the frontier, so a
            // vetoed expansion leaves the parent (and its valid bounds) intact.
            let mut children: Vec<BoundsLeaf> = Vec::with_capacity(2);
            let mut children_bytes = 0usize;
            {
                let parent = &leaves[idx];
                for (value, branch_p) in [(true, p), (false, 1.0 - p)] {
                    if branch_p == 0.0 {
                        continue;
                    }
                    let cofactor = parent.dnf.assign(var, value);
                    children_bytes += leaf_bytes(&cofactor);
                    children.push(bound_leaf(cofactor, parent.mass * branch_p, probs));
                }
            }
            let parent_bytes = leaf_bytes(&leaves[idx].dnf);
            let grown = frontier_bytes - parent_bytes + children_bytes;
            if let Some(budget) = config.frontier_budget {
                if grown > budget {
                    // The frontier's own budget: deterministic (structural
                    // sizes only), so the degraded bounds are still
                    // bitwise-identical at every thread count.
                    break;
                }
            }
            if ctx.account(Stage::Confidence, children_bytes).is_err() {
                // The governor's arena budget: degrade instead of erroring —
                // the whole point of bounds mode is an answer under pressure.
                ctx.release(children_bytes);
                break;
            }
            rounds += 1;
            // Frontier growth is seeded-deterministic per tuple (insertion-
            // order scans, structural budgets), so the leaf count is a valid
            // deterministic counter at every pool size.
            ctx.tally(Counter::FrontierNodes, children.len() as u64);
            leaves.swap_remove(idx);
            leaves.extend(children);
            ctx.release(parent_bytes);
            frontier_bytes = grown;

            // Re-sum the frontier and clamp: both the old and the new bracket
            // are valid, so their intersection is valid and monotone.
            let mut sum_lo = 0.0;
            let mut sum_hi = 0.0;
            for leaf in &leaves {
                sum_lo += leaf.mass * leaf.lo;
                sum_hi += leaf.mass * leaf.hi;
            }
            global_lo = global_lo.max(sum_lo);
            global_hi = global_hi.min(sum_hi);
        }
    }
    ctx.release(frontier_bytes);
    Ok(TupleConfidence {
        tuple: tuple.clone(),
        lo: global_lo,
        hi: global_hi,
        method: ConfMethod::Dissociation,
        rounds,
    })
}

/// Bounds a cofactor: constants and read-once formulas close exactly, the
/// rest get crude dissociation bounds and stay open.
fn bound_leaf(dnf: Dnf, mass: f64, probs: &BTreeMap<Variable, f64>) -> BoundsLeaf {
    match factorize(&dnf) {
        Factorization::Constant(b) => {
            let p = if b { 1.0 } else { 0.0 };
            BoundsLeaf {
                mass,
                dnf,
                lo: p,
                hi: p,
                open: false,
            }
        }
        Factorization::ReadOnce(tree) => {
            let p = tree.probability(probs);
            BoundsLeaf {
                mass,
                dnf,
                lo: p,
                hi: p,
                open: false,
            }
        }
        Factorization::Blocked(_) => {
            let (lo, hi) = crude_bounds(&dnf, probs);
            BoundsLeaf {
                mass,
                dnf,
                lo,
                hi,
                open: true,
            }
        }
    }
}

/// Single-shot dissociation bounds for a monotone DNF.
///
/// Upper: treat the clauses as independent events — valid because monotone
/// events over a product measure are positively associated (the oblivious
/// upper bound of full dissociation). Lower: the independent-or over a
/// greedily chosen variable-disjoint subfamily of clauses (genuinely
/// independent events whose union is implied), improved by the best single
/// clause.
fn crude_bounds(dnf: &Dnf, probs: &BTreeMap<Variable, f64>) -> (f64, f64) {
    let clause_prob = |c: &Clause| -> f64 {
        c.vars()
            .iter()
            .map(|v| probs.get(v).copied().unwrap_or(0.0))
            .product()
    };
    let mut miss_all = 1.0f64;
    let mut best_single = 0.0f64;
    let mut miss_disjoint = 1.0f64;
    let mut used: Vec<Variable> = Vec::new();
    for clause in dnf.clauses() {
        let p = clause_prob(clause);
        miss_all *= 1.0 - p;
        best_single = best_single.max(p);
        if clause.vars().iter().all(|v| !used.contains(v)) {
            used.extend_from_slice(clause.vars());
            miss_disjoint *= 1.0 - p;
        }
    }
    let hi = 1.0 - miss_all;
    let lo = best_single.max(1.0 - miss_disjoint).min(hi);
    (lo, hi)
}

/// SplitMix64: a tiny deterministic generator for refinement tie-breaks
/// (keeps the crate dependency-free; streams match the published SplitMix64
/// constants).
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_exec::AnnotatedRow;
    use pdb_lineage::exact_probability;
    use pdb_storage::{tuple, DataType, Schema};

    /// A Boolean answer whose single bag carries the given DNF: one row per
    /// clause, one lineage column per clause position (padded with fresh
    /// always-true-irrelevant variables is unnecessary — rows may repeat
    /// variables across columns).
    fn answer_for(clauses: &[&[u64]], probs: &BTreeMap<Variable, f64>) -> Annotated {
        let width = clauses.iter().map(|c| c.len()).max().unwrap();
        let relations: Vec<String> = (0..width).map(|i| format!("R{i}")).collect();
        let schema = Schema::from_pairs(&[("a", DataType::Int)]).unwrap();
        let mut t = Annotated::new(schema, relations);
        for clause in clauses {
            // Pad by repeating the last variable: Clause::new dedups.
            let mut lineage: Vec<(Variable, f64)> = clause
                .iter()
                .map(|v| (Variable(*v), probs[&Variable(*v)]))
                .collect();
            while lineage.len() < width {
                lineage.push(*lineage.last().unwrap());
            }
            t.push(AnnotatedRow::new(tuple![1i64], lineage));
        }
        t
    }

    fn probs_for(vars: &[u64]) -> BTreeMap<Variable, f64> {
        vars.iter()
            .map(|v| (Variable(*v), 0.1 + 0.8 * ((v * 7 % 11) as f64 / 11.0)))
            .collect()
    }

    fn oracle(clauses: &[&[u64]], probs: &BTreeMap<Variable, f64>) -> f64 {
        let mut d = Dnf::empty();
        for c in clauses {
            d.add_clause(Clause::new(c.iter().map(|v| Variable(*v))));
        }
        exact_probability(&d, probs)
    }

    #[test]
    fn read_once_bag_is_exact() {
        let probs = probs_for(&[1, 2, 3]);
        let answer = answer_for(&[&[1, 3], &[2, 3]], &probs);
        let config = AnytimeConfig::new(ApproxPolicy::Exact);
        let got =
            anytime_confidences_ctx(&answer, &config, &Pool::new(2), &ExecContext::unbounded())
                .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].method, ConfMethod::ReadOnce);
        let want = oracle(&[&[1, 3], &[2, 3]], &probs);
        assert!((got[0].value() - want).abs() < 1e-12);
        assert_eq!(got[0].width(), 0.0);
    }

    #[test]
    fn exact_policy_rejects_blocked_lineage() {
        let probs = probs_for(&[1, 2, 3, 4]);
        let answer = answer_for(&[&[1, 2], &[2, 3], &[3, 4]], &probs);
        let config = AnytimeConfig::new(ApproxPolicy::Exact);
        let err =
            anytime_confidences_ctx(&answer, &config, &Pool::new(1), &ExecContext::unbounded())
                .unwrap_err();
        assert!(matches!(err, ConfError::NotReadOnce(_)));
        assert!(err.to_string().contains("not read-once"));
    }

    #[test]
    fn bounds_bracket_the_oracle_and_collapse_on_exhaustion() {
        let clauses: &[&[u64]] = &[&[1, 2], &[2, 3], &[3, 4]];
        let probs = probs_for(&[1, 2, 3, 4]);
        let answer = answer_for(clauses, &probs);
        let want = oracle(clauses, &probs);
        // eps = 0 runs to exhaustion: the bracket collapses to the exact
        // value.
        let config = AnytimeConfig::new(ApproxPolicy::Bounds { eps: 0.0 });
        let got =
            anytime_confidences_ctx(&answer, &config, &Pool::new(4), &ExecContext::unbounded())
                .unwrap();
        assert_eq!(got[0].method, ConfMethod::Dissociation);
        assert!(got[0].rounds > 0);
        assert!((got[0].lo - want).abs() < 1e-12, "{} vs {want}", got[0].lo);
        assert!((got[0].hi - want).abs() < 1e-12);
    }

    #[test]
    fn wider_eps_stops_earlier_but_still_brackets() {
        let clauses: &[&[u64]] = &[&[1, 2], &[2, 3], &[3, 4], &[4, 5], &[5, 6]];
        let probs = probs_for(&[1, 2, 3, 4, 5, 6]);
        let answer = answer_for(clauses, &probs);
        let want = oracle(clauses, &probs);
        let loose = AnytimeConfig::new(ApproxPolicy::Bounds { eps: 0.2 });
        let tight = AnytimeConfig::new(ApproxPolicy::Bounds { eps: 1e-3 });
        let pool = Pool::new(1);
        let ctx = ExecContext::unbounded();
        let a = anytime_confidences_ctx(&answer, &loose, &pool, &ctx).unwrap();
        let b = anytime_confidences_ctx(&answer, &tight, &pool, &ctx).unwrap();
        for r in [&a[0], &b[0]] {
            assert!(r.lo <= want + 1e-12 && want <= r.hi + 1e-12);
        }
        assert!(b[0].width() <= a[0].width() + 1e-12);
        assert!(b[0].width() <= 1e-3 + 1e-12);
        assert!(a[0].rounds <= b[0].rounds);
    }

    #[test]
    fn max_rounds_cap_is_respected_and_width_shrinks_with_more_rounds() {
        let clauses: &[&[u64]] = &[&[1, 2], &[2, 3], &[3, 4], &[4, 5], &[5, 6]];
        let probs = probs_for(&[1, 2, 3, 4, 5, 6]);
        let answer = answer_for(clauses, &probs);
        let pool = Pool::new(1);
        let ctx = ExecContext::unbounded();
        let mut prev = f64::INFINITY;
        for cap in [0, 1, 2, 4, 8, 16] {
            let config = AnytimeConfig::new(ApproxPolicy::Bounds { eps: 0.0 }).with_max_rounds(cap);
            let got = anytime_confidences_ctx(&answer, &config, &pool, &ctx).unwrap();
            assert!(got[0].rounds <= cap);
            assert!(got[0].width() <= prev + 1e-12, "cap {cap} widened");
            prev = got[0].width();
        }
    }

    #[test]
    fn results_are_bitwise_identical_across_pool_sizes_and_stable_per_seed() {
        let clauses: &[&[u64]] = &[&[1, 2], &[2, 3], &[3, 4], &[4, 5]];
        let probs = probs_for(&[1, 2, 3, 4, 5]);
        let answer = answer_for(clauses, &probs);
        let ctx = ExecContext::unbounded();
        let config = AnytimeConfig::new(ApproxPolicy::Bounds { eps: 0.05 }).with_seed(42);
        let reference = anytime_confidences_ctx(&answer, &config, &Pool::new(1), &ctx).unwrap();
        for threads in [2, 4, 8] {
            let got = anytime_confidences_ctx(&answer, &config, &Pool::new(threads), &ctx).unwrap();
            assert_eq!(got.len(), reference.len());
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.lo.to_bits(), b.lo.to_bits(), "threads={threads}");
                assert_eq!(a.hi.to_bits(), b.hi.to_bits(), "threads={threads}");
                assert_eq!(a.rounds, b.rounds);
            }
        }
        // The same seed reproduces the run exactly.
        let again = anytime_confidences_ctx(&answer, &config, &Pool::new(3), &ctx).unwrap();
        assert_eq!(again, reference);
    }

    #[test]
    fn deadline_returns_best_bounds_instead_of_error() {
        use pdb_govern::GovernorBuilder;
        use std::time::Duration;
        let clauses: &[&[u64]] = &[&[1, 2], &[2, 3], &[3, 4], &[4, 5], &[5, 6], &[6, 7]];
        let probs = probs_for(&[1, 2, 3, 4, 5, 6, 7]);
        let answer = answer_for(clauses, &probs);
        let want = oracle(clauses, &probs);
        // A deadline that has already expired: every refinement checkpoint
        // fails, so only the crude initial bounds survive — returned, not
        // raised.
        let gov = GovernorBuilder::new().deadline(Duration::ZERO).build();
        std::thread::sleep(Duration::from_millis(2));
        let ctx = ExecContext::governed(&gov);
        let config = AnytimeConfig::new(ApproxPolicy::Bounds { eps: 0.0 });
        let got = anytime_confidences_ctx(&answer, &config, &Pool::new(2), &ctx).unwrap();
        assert_eq!(got[0].rounds, 0);
        assert!(got[0].lo <= want + 1e-12 && want <= got[0].hi + 1e-12);
        assert!(got[0].width() > 0.0);
    }

    #[test]
    fn cancellation_still_aborts() {
        use pdb_govern::QueryGovernor;
        let clauses: &[&[u64]] = &[&[1, 2], &[2, 3], &[3, 4]];
        let probs = probs_for(&[1, 2, 3, 4]);
        let answer = answer_for(clauses, &probs);
        let gov = QueryGovernor::new();
        gov.cancel();
        let ctx = ExecContext::governed(&gov);
        let config = AnytimeConfig::new(ApproxPolicy::Bounds { eps: 0.0 });
        let err = anytime_confidences_ctx(&answer, &config, &Pool::new(2), &ctx).unwrap_err();
        assert!(matches!(
            err,
            ConfError::Governed(SproutError::Cancelled { .. })
        ));
    }

    #[test]
    fn frontier_budget_degrades_to_wider_but_valid_bounds() {
        let clauses: &[&[u64]] = &[&[1, 2], &[2, 3], &[3, 4], &[4, 5], &[5, 6]];
        let probs = probs_for(&[1, 2, 3, 4, 5, 6]);
        let answer = answer_for(clauses, &probs);
        let want = oracle(clauses, &probs);
        let pool = Pool::new(1);
        let ctx = ExecContext::unbounded();
        let unbounded = AnytimeConfig::new(ApproxPolicy::Bounds { eps: 0.0 });
        let full = anytime_confidences_ctx(&answer, &unbounded, &pool, &ctx).unwrap();
        // A frontier cap that fits the root leaf but no expansion: the crude
        // bounds come back unrefined instead of an error.
        let root_bytes = {
            let mut d = Dnf::empty();
            for c in clauses {
                d.add_clause(Clause::new(c.iter().map(|v| Variable(*v))));
            }
            leaf_bytes(&d)
        };
        let tight =
            AnytimeConfig::new(ApproxPolicy::Bounds { eps: 0.0 }).with_frontier_budget(root_bytes);
        let got = anytime_confidences_ctx(&answer, &tight, &pool, &ctx).unwrap();
        assert_eq!(got[0].rounds, 0);
        assert!(got[0].lo <= want + 1e-12 && want <= got[0].hi + 1e-12);
        assert!(got[0].width() >= full[0].width());
        // A generous cap changes nothing: same bits as the default run.
        let roomy = AnytimeConfig::new(ApproxPolicy::Bounds { eps: 0.0 })
            .with_frontier_budget(root_bytes * 1000);
        let same = anytime_confidences_ctx(&answer, &roomy, &pool, &ctx).unwrap();
        assert_eq!(same, full);
        let open = AnytimeConfig::new(ApproxPolicy::Bounds { eps: 0.0 }).with_unbounded_frontier();
        assert_eq!(
            anytime_confidences_ctx(&answer, &open, &pool, &ctx).unwrap(),
            full
        );
    }

    #[test]
    fn frontier_budget_is_deterministic_across_pool_sizes() {
        let clauses: &[&[u64]] = &[&[1, 2], &[2, 3], &[3, 4], &[4, 5], &[5, 6]];
        let probs = probs_for(&[1, 2, 3, 4, 5, 6]);
        let answer = answer_for(clauses, &probs);
        let config = AnytimeConfig::new(ApproxPolicy::Bounds { eps: 0.0 })
            .with_frontier_budget(600)
            .with_seed(7);
        let ctx = ExecContext::unbounded();
        let reference = anytime_confidences_ctx(&answer, &config, &Pool::new(1), &ctx).unwrap();
        for threads in [2, 8] {
            let got = anytime_confidences_ctx(&answer, &config, &Pool::new(threads), &ctx).unwrap();
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn governor_arena_exhaustion_degrades_instead_of_erroring() {
        use pdb_govern::GovernorBuilder;
        let clauses: &[&[u64]] = &[&[1, 2], &[2, 3], &[3, 4], &[4, 5], &[5, 6]];
        let probs = probs_for(&[1, 2, 3, 4, 5, 6]);
        let answer = answer_for(clauses, &probs);
        let want = oracle(clauses, &probs);
        let config = AnytimeConfig::new(ApproxPolicy::Bounds { eps: 0.0 });
        // Budget below even the root leaf: initial accounting fails, the
        // crude bounds still come back and the budget is released afterwards.
        let gov = GovernorBuilder::new().memory_budget(64).build();
        let ctx = ExecContext::governed(&gov);
        let got = anytime_confidences_ctx(&answer, &config, &Pool::new(2), &ctx).unwrap();
        assert_eq!(got[0].rounds, 0);
        assert!(got[0].lo <= want + 1e-12 && want <= got[0].hi + 1e-12);
        // Budget that fits the root but starves refinement partway: fewer
        // rounds than the unbounded run, bounds still bracket, and the
        // frontier's bytes are all released on return.
        let gov = GovernorBuilder::new().memory_budget(700).build();
        let ctx = ExecContext::governed(&gov);
        let full =
            anytime_confidences_ctx(&answer, &config, &Pool::new(2), &ExecContext::unbounded())
                .unwrap();
        let got = anytime_confidences_ctx(&answer, &config, &Pool::new(2), &ctx).unwrap();
        assert!(got[0].rounds < full[0].rounds);
        assert!(got[0].lo <= want + 1e-12 && want <= got[0].hi + 1e-12);
        assert_eq!(gov.memory_used(), 0);
    }

    #[test]
    fn multiple_bags_keep_tuple_order() {
        let probs = probs_for(&[1, 2, 3, 4]);
        let schema = Schema::from_pairs(&[("a", DataType::Int)]).unwrap();
        let mut t = Annotated::new(schema, vec!["R".into()]);
        for (val, var) in [(2i64, 1u64), (1, 2), (1, 3), (2, 4)] {
            t.push(AnnotatedRow::new(
                tuple![val],
                vec![(Variable(var), probs[&Variable(var)])],
            ));
        }
        let config = AnytimeConfig::new(ApproxPolicy::Exact);
        let got =
            anytime_confidences_ctx(&t, &config, &Pool::new(2), &ExecContext::unbounded()).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].tuple, tuple![1i64]);
        assert_eq!(got[1].tuple, tuple![2i64]);
        // Single-relation lineage is always read-once: an ∨ of leaves.
        let p2 = probs[&Variable(2)];
        let p3 = probs[&Variable(3)];
        let want = 1.0 - (1.0 - p2) * (1.0 - p3);
        assert!((got[0].value() - want).abs() < 1e-12);
    }
}
