//! Multi-scan confidence computation for signatures without the 1scan
//! property (Example V.11, Proposition V.10).
//!
//! The scan schedule derived from the signature lists pre-aggregation
//! signatures, each of which *does* have the 1scan property. Every
//! pre-aggregation is evaluated in its own pass: the answer is grouped by the
//! data columns and the variable columns of the relations *not* covered by
//! the step, the step's probability is computed with the streaming algorithm
//! of Fig. 8 restricted to its own 1scanTree, and the group collapses to a
//! single row whose surviving lineage column (the step's leftmost table)
//! carries a representative variable and the computed probability — exactly
//! the `min(V) / prob(P)` convention of Fig. 5. After all pre-aggregations
//! the remaining signature has the 1scan property and a final scan finishes
//! the computation.

use std::collections::BTreeSet;

use pdb_exec::{Annotated, RowRef};
use pdb_query::Signature;
use pdb_storage::{Tuple, Variable};

use crate::error::ConfResult;
use crate::one_scan::{one_scan_confidences, one_scan_confidences_presorted};

/// Computes `(distinct answer tuple, confidence)` pairs for an arbitrary
/// signature by scheduling `scan_count()` scans.
///
/// # Errors
/// Fails if the signature references relations missing from the answer.
pub fn multi_scan_confidences(
    answer: &Annotated,
    signature: &Signature,
) -> ConfResult<Vec<(Tuple, f64)>> {
    if answer.is_empty() {
        return Ok(Vec::new());
    }
    let schedule = signature.scan_schedule();
    let mut current = answer.clone();
    for step in &schedule.pre_aggregations {
        current = apply_pre_aggregation(&current, step)?;
    }
    one_scan_confidences(&current, &schedule.final_signature)
}

/// Executes one pre-aggregation `[step]`: groups the input by the data
/// columns and the lineage columns of relations outside the step, computes
/// the step's probability per group, and collapses each group to one row in
/// which the step's leftmost table carries the representative variable and
/// the aggregated probability; the step's other lineage columns are dropped.
pub fn apply_pre_aggregation(input: &Annotated, step: &Signature) -> ConfResult<Annotated> {
    let step_tables: BTreeSet<String> = step.tables().into_iter().collect();
    let leftmost = step.leftmost_table().to_string();
    let other_relations: Vec<String> = input
        .relations()
        .iter()
        .filter(|r| !step_tables.contains(*r))
        .cloned()
        .collect();
    let leftmost_col = input.relation_index(&leftmost)?;
    let other_cols: Vec<usize> = other_relations
        .iter()
        .map(|r| input.relation_index(r))
        .collect::<Result<_, _>>()?;

    // Sort so that rows of the same (data values, other-relation variables)
    // group are contiguous and, within a group, ordered as the step's
    // streaming evaluation requires.
    let mut sorted = input.clone();
    {
        let data_cols: Vec<String> = sorted
            .schema()
            .names()
            .into_iter()
            .map(|s| s.to_string())
            .collect();
        let mut relation_order = other_relations.clone();
        // `sort_for_signature` would re-sort only by the step's tables; we
        // need the group-defining columns first, so sort manually here.
        relation_order.extend(step_preorder(step)?);
        sorted.sort_for_confidence(&data_cols, &relation_order)?;
    }

    // Output keeps the data schema and every relation except the step's
    // non-leftmost tables, preserving the input's relative column order.
    let kept_relations: Vec<String> = input
        .relations()
        .iter()
        .filter(|r| !step_tables.contains(*r) || **r == leftmost)
        .cloned()
        .collect();
    let kept_cols: Vec<usize> = kept_relations
        .iter()
        .map(|r| input.relation_index(r))
        .collect::<Result<_, _>>()?;
    let mut out = Annotated::new(sorted.schema().clone(), kept_relations);

    let mut group_start = 0usize;
    while group_start < sorted.len() {
        let mut group_end = group_start + 1;
        while group_end < sorted.len()
            && same_group(sorted.row(group_start), sorted.row(group_end), &other_cols)
        {
            group_end += 1;
        }
        aggregate_group(
            &sorted,
            group_start..group_end,
            step,
            &kept_cols,
            leftmost_col,
            &mut out,
        )?;
        group_start = group_end;
    }
    Ok(out)
}

/// Preorder variable-column order of a (1scan) step signature.
fn step_preorder(step: &Signature) -> ConfResult<Vec<String>> {
    use pdb_query::OneScanTree;
    let tree = OneScanTree::build(step)?;
    Ok(tree.preorder())
}

fn same_group(a: RowRef<'_>, b: RowRef<'_>, other_cols: &[usize]) -> bool {
    if a.data != b.data {
        return false;
    }
    other_cols.iter().all(|&c| a.lineage[c].0 == b.lineage[c].0)
}

/// Collapses one group of rows (an index range of `sorted`) into a single
/// pre-aggregated row appended to `out`.
fn aggregate_group(
    sorted: &Annotated,
    group: std::ops::Range<usize>,
    step: &Signature,
    kept_cols: &[usize],
    leftmost_col: usize,
    out: &mut Annotated,
) -> ConfResult<()> {
    // Evaluate the step's probability over the group alone: build a small
    // annotated relation with an empty data tuple so the whole group is a
    // single bag, then run the streaming algorithm on it.
    let mut bag = Annotated::with_row_capacity(
        pdb_storage::Schema::empty(),
        sorted.relations().to_vec(),
        group.len(),
    );
    for i in group.clone() {
        bag.push_row(&[], sorted.row(i).lineage);
    }
    let confidences = one_scan_confidences_presorted(&bag, step)?;
    debug_assert_eq!(confidences.len(), 1);
    let prob = confidences
        .first()
        .map(|(_, p)| *p)
        .expect("non-empty group produces one confidence");
    let representative: Variable = group
        .clone()
        .map(|i| sorted.row(i).lineage[leftmost_col].0)
        .min()
        .expect("group is non-empty");

    let exemplar = sorted.row(group.start);
    let lineage: Vec<_> = kept_cols
        .iter()
        .map(|&c| {
            if c == leftmost_col {
                (representative, prob)
            } else {
                exemplar.lineage[c]
            }
        })
        .collect();
    out.push_row(exemplar.data, &lineage);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_confidences;
    use crate::grp::grp_confidences;
    use pdb_exec::fixtures::fig1_catalog;
    use pdb_exec::pipeline::evaluate_join_order;
    use pdb_query::cq::intro_query_q;
    use pdb_query::reduct::query_signature;
    use pdb_query::FdSet;
    use pdb_storage::tuple;

    fn order(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn non_one_scan_signature_needs_multiple_scans_and_is_exact() {
        // Without key constraints the Boolean intro query's signature is
        // (Cust*(Ord*Item*)*)*, which needs 3 scans (Example V.11).
        let catalog = fig1_catalog();
        let q = intro_query_q().boolean_version();
        let answer = evaluate_join_order(&q, &catalog, &order(&["Cust", "Ord", "Item"])).unwrap();
        let sig = query_signature(&q, &FdSet::empty()).unwrap();
        assert_eq!(sig.scan_count(), 3);
        let conf = multi_scan_confidences(&answer, &sig).unwrap();
        assert_eq!(conf.len(), 1);
        assert!((conf[0].1 - 0.0028).abs() < 1e-12);
    }

    #[test]
    fn multi_scan_handles_one_scan_signatures_too() {
        let catalog = fig1_catalog();
        let q = intro_query_q();
        let answer = evaluate_join_order(&q, &catalog, &order(&["Cust", "Ord", "Item"])).unwrap();
        // Without FDs the non-Boolean reduct still needs 2 scans; with the
        // per-bag refinement the final confidence must match the oracle.
        let sig = query_signature(&q, &FdSet::empty()).unwrap();
        let conf = multi_scan_confidences(&answer, &sig).unwrap();
        assert_eq!(conf.len(), 1);
        assert_eq!(conf[0].0, tuple!["1995-01-10"]);
        assert!((conf[0].1 - 0.0028).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_grp_and_brute_force_without_selections() {
        let catalog = fig1_catalog();
        let mut q = intro_query_q();
        q.predicates.clear();
        let answer = evaluate_join_order(&q, &catalog, &order(&["Ord", "Item", "Cust"])).unwrap();
        let sig = query_signature(&q, &FdSet::empty()).unwrap();
        let ours = multi_scan_confidences(&answer, &sig).unwrap();
        let reference = grp_confidences(&answer, &sig).unwrap();
        let oracle = brute_force_confidences(&answer);
        assert_eq!(ours.len(), oracle.len());
        for ((t1, p1), ((t2, p2), (t3, p3))) in ours.iter().zip(reference.iter().zip(oracle.iter()))
        {
            assert_eq!(t1, t2);
            assert_eq!(t1, t3);
            assert!(
                (p1 - p3).abs() < 1e-9,
                "{t1}: multi-scan {p1} vs oracle {p3}"
            );
            assert!((p2 - p3).abs() < 1e-9, "{t1}: grp {p2} vs oracle {p3}");
        }
    }

    #[test]
    fn pre_aggregation_reduces_row_count() {
        let catalog = fig1_catalog();
        let mut q = intro_query_q();
        q.predicates.clear();
        let answer = evaluate_join_order(&q, &catalog, &order(&["Cust", "Ord", "Item"])).unwrap();
        let step = Signature::star(Signature::table("Item"));
        let reduced = apply_pre_aggregation(&answer, &step).unwrap();
        assert!(reduced.len() < answer.len());
        assert_eq!(reduced.relations(), answer.relations());
    }

    #[test]
    fn empty_answer_short_circuits() {
        let catalog = fig1_catalog();
        let mut q = intro_query_q();
        q.predicates[0].constant = pdb_storage::Value::str("Nobody");
        let answer = evaluate_join_order(&q, &catalog, &order(&["Cust", "Ord", "Item"])).unwrap();
        let sig = query_signature(&q, &FdSet::empty()).unwrap();
        assert!(multi_scan_confidences(&answer, &sig).unwrap().is_empty());
    }
}
