//! Multi-scan confidence computation for signatures without the 1scan
//! property (Example V.11, Proposition V.10).
//!
//! The scan schedule derived from the signature lists pre-aggregation
//! signatures, each of which *does* have the 1scan property. Every
//! pre-aggregation is evaluated in its own pass: the answer is grouped by the
//! data columns and the variable columns of the relations *not* covered by
//! the step, the step's probability is computed with the streaming algorithm
//! of Fig. 8 restricted to its own 1scanTree, and the group collapses to a
//! single row whose surviving lineage column (the step's leftmost table)
//! carries a representative variable and the computed probability — exactly
//! the `min(V) / prob(P)` convention of Fig. 5. After all pre-aggregations
//! the remaining signature has the 1scan property and a final scan finishes
//! the computation.
//!
//! Since PR 2 a pre-aggregation pass never copies or permutes its input:
//! grouping runs over normalized `u64` sort keys ([`pdb_exec::key`], the
//! same machinery the joins use) through a sorted row-index permutation, the
//! per-group probability comes from the flat iterative Fig. 8 machine, and
//! groups fan out across the worker pool (groups are independent and
//! results stay in group order, so the output is identical at every thread
//! count). Since PR 3 a *huge group* — the Boolean / low-distinct shape,
//! where group-level fan-out degenerates to one worker — is split further
//! at the boundaries of its step-root variable ([`SplitPolicy`],
//! bitwise-identical results at every thread count); since PR 4 ordinary
//! groups and all huge-group sub-ranges are scheduled together through
//! [`crate::one_scan`]'s unified weight-balanced scheduler (boundaries read
//! off the sort-key words) and the collapsed output rows are written in
//! place into disjoint arena segments.

use std::collections::BTreeSet;

use pdb_exec::key::CELL_WIDTH;
use pdb_exec::Annotated;
use pdb_govern::ExecContext;
use pdb_par::{partition_by_weight, Pool};
use pdb_query::{OneScanTree, Signature};
use pdb_storage::{Tuple, Variable};

use crate::error::ConfResult;
use crate::one_scan::{
    one_scan_confidences_ctx, unit_confidences, FlatScan, RootBoundaries, SplitPolicy,
};

/// Computes `(distinct answer tuple, confidence)` pairs for an arbitrary
/// signature by scheduling `scan_count()` scans, using the default worker
/// pool.
///
/// # Errors
/// Fails if the signature references relations missing from the answer.
pub fn multi_scan_confidences(
    answer: &Annotated,
    signature: &Signature,
) -> ConfResult<Vec<(Tuple, f64)>> {
    multi_scan_confidences_with(answer, signature, &Pool::from_env().for_items(answer.len()))
}

/// [`multi_scan_confidences`] with an explicit worker pool. The result is
/// identical for every pool size.
///
/// # Errors
/// Fails if the signature references relations missing from the answer.
pub fn multi_scan_confidences_with(
    answer: &Annotated,
    signature: &Signature,
    pool: &Pool,
) -> ConfResult<Vec<(Tuple, f64)>> {
    multi_scan_confidences_tuned(answer, signature, pool, SplitPolicy::default())
}

/// [`multi_scan_confidences_with`] with an explicit intra-bag
/// [`SplitPolicy`], applied to every pre-aggregation pass and the final
/// scan. Results are bitwise-identical for every pool size and policy.
///
/// # Errors
/// Fails if the signature references relations missing from the answer.
pub fn multi_scan_confidences_tuned(
    answer: &Annotated,
    signature: &Signature,
    pool: &Pool,
    policy: SplitPolicy,
) -> ConfResult<Vec<(Tuple, f64)>> {
    multi_scan_confidences_ctx(answer, signature, pool, policy, &ExecContext::unbounded())
}

/// [`multi_scan_confidences_tuned`] under a governor [`ExecContext`]: every
/// pre-aggregation pass and the final scan run their `conf.bag` checkpoints,
/// and an interrupted pass surfaces as [`ConfError::Governed`]. A governed
/// run that completes is bitwise-identical to an ungoverned one.
///
/// # Errors
/// Fails if the signature references relations missing from the answer, or
/// with [`ConfError::Governed`] when the governor interrupts a scan.
pub fn multi_scan_confidences_ctx(
    answer: &Annotated,
    signature: &Signature,
    pool: &Pool,
    policy: SplitPolicy,
    ctx: &ExecContext,
) -> ConfResult<Vec<(Tuple, f64)>> {
    if answer.is_empty() {
        return Ok(Vec::new());
    }
    let schedule = signature.scan_schedule();
    let mut current: Option<Annotated> = None;
    for step in &schedule.pre_aggregations {
        let input = current.as_ref().unwrap_or(answer);
        current = Some(apply_pre_aggregation_ctx(input, step, pool, policy, ctx)?);
    }
    let input = current.as_ref().unwrap_or(answer);
    one_scan_confidences_ctx(input, &schedule.final_signature, pool, policy, ctx)
}

/// Executes one pre-aggregation `[step]` with the default worker pool; see
/// [`apply_pre_aggregation_with`].
///
/// # Errors
/// Fails if the step references relations missing from the input.
pub fn apply_pre_aggregation(input: &Annotated, step: &Signature) -> ConfResult<Annotated> {
    apply_pre_aggregation_with(input, step, &Pool::from_env().for_items(input.len()))
}

/// Executes one pre-aggregation `[step]`: groups the input by the data
/// columns and the lineage columns of relations outside the step, computes
/// the step's probability per group, and collapses each group to one row in
/// which the step's leftmost table carries the representative variable and
/// the aggregated probability; the step's other lineage columns are dropped.
///
/// # Errors
/// Fails if the step references relations missing from the input.
pub fn apply_pre_aggregation_with(
    input: &Annotated,
    step: &Signature,
    pool: &Pool,
) -> ConfResult<Annotated> {
    apply_pre_aggregation_tuned(input, step, pool, SplitPolicy::default())
}

/// [`apply_pre_aggregation_with`] with an explicit intra-bag
/// [`SplitPolicy`]: a group at or above the policy's row threshold is split
/// at the boundaries of the step root's variable and scanned by several
/// workers, with the per-partition partials folded back deterministically
/// (see [`crate::one_scan`]) — so a pre-aggregation whose input collapses
/// into one giant group still scales with cores. The output is
/// bitwise-identical for every pool size and policy.
///
/// # Errors
/// Fails if the step references relations missing from the input.
pub fn apply_pre_aggregation_tuned(
    input: &Annotated,
    step: &Signature,
    pool: &Pool,
    policy: SplitPolicy,
) -> ConfResult<Annotated> {
    apply_pre_aggregation_ctx(input, step, pool, policy, &ExecContext::unbounded())
}

/// [`apply_pre_aggregation_tuned`] under a governor [`ExecContext`] (see
/// [`multi_scan_confidences_ctx`]).
///
/// # Errors
/// Fails if the step references relations missing from the input, or with
/// [`ConfError::Governed`] when the governor interrupts the pass.
pub fn apply_pre_aggregation_ctx(
    input: &Annotated,
    step: &Signature,
    pool: &Pool,
    policy: SplitPolicy,
    ctx: &ExecContext,
) -> ConfResult<Annotated> {
    let step_tables: BTreeSet<String> = step.tables().into_iter().collect();
    let leftmost = step.leftmost_table().to_string();
    let other_relations: Vec<String> = input
        .relations()
        .iter()
        .filter(|r| !step_tables.contains(*r))
        .cloned()
        .collect();
    let leftmost_col = input.relation_index(&leftmost)?;
    let other_cols: Vec<usize> = other_relations
        .iter()
        .map(|r| input.relation_index(r))
        .collect::<Result<_, _>>()?;

    // The step's own streaming machine, over the step signature's 1scanTree.
    let tree = OneScanTree::build(step)?;
    let machine = FlatScan::new(&tree, input)?;

    // Sort a row-index permutation so that rows of the same (data values,
    // other-relation variables) group are contiguous and, within a group,
    // ordered as the step's streaming evaluation requires. Group detection
    // then compares the normalized key prefix — flat `u64` words — instead
    // of `Value`s.
    let col_idx: Vec<usize> = (0..input.data_width()).collect();
    let mut rel_idx = other_cols.clone();
    rel_idx.extend(machine.preorder_cols().iter().map(|&c| c as usize));
    let keys = input.sort_keys_with(&col_idx, &rel_idx, pool);
    let order = keys.sorted_permutation_with(input.len(), pool);
    let group_words = col_idx.len() * CELL_WIDTH + other_cols.len();
    let mut group_starts = Vec::new();
    for k in 0..order.len() {
        if k == 0
            || keys.row(order[k] as usize)[..group_words]
                != keys.row(order[k - 1] as usize)[..group_words]
        {
            group_starts.push(k);
        }
    }

    // Output keeps the data schema and every relation except the step's
    // non-leftmost tables, preserving the input's relative column order.
    let kept_relations: Vec<String> = input
        .relations()
        .iter()
        .filter(|r| !step_tables.contains(*r) || **r == leftmost)
        .cloned()
        .collect();
    let kept_cols: Vec<usize> = kept_relations
        .iter()
        .map(|r| input.relation_index(r))
        .collect::<Result<_, _>>()?;

    let n = group_starts.len();
    let group_rows = |g: usize| -> &[u32] {
        &order[group_starts[g]..group_starts.get(g + 1).copied().unwrap_or(order.len())]
    };

    // Per-group probabilities through the unified bag + intra-bag scheduler:
    // ordinary groups and the sub-ranges of huge groups (cut at the step
    // root's variable boundaries, read off the key words — the root is the
    // first preorder extra, right after the grouping prefix) form one
    // weight-balanced schedule, so many medium-huge groups overlap.
    let probs = unit_confidences(
        &machine,
        input,
        &order,
        &group_starts,
        RootBoundaries::Keys {
            keys: &keys,
            word: group_words,
        },
        pool,
        policy,
        ctx,
    )?;

    // Collapse: exactly one output row per group — the exemplar's data and
    // lineage, with the step's leftmost table carrying the group's
    // representative variable (the minimum, Fig. 5's `min(V)`) and the
    // aggregated probability. Groups are weight-balanced across the pool
    // (the representative scan is O(group rows)) and written in place into
    // disjoint arena segments, in group order.
    let mut out = Annotated::with_placeholder_rows(input.schema().clone(), kept_relations, n);
    let dw = out.data_width();
    let lw = out.lineage_width();
    let chunks = partition_by_weight(&group_starts, order.len(), pool.threads());
    let data_cuts: Vec<usize> = chunks.iter().map(|c| c.start * dw).collect();
    let lineage_cuts: Vec<usize> = chunks.iter().map(|c| c.start * lw).collect();
    let (data, lineage) = out.arena_segments_mut();
    pool.map_slices2_mut(
        data,
        &data_cuts,
        lineage,
        &lineage_cuts,
        |ci, dseg, lseg| {
            for (local, g) in chunks[ci].clone().enumerate() {
                let rows = group_rows(g);
                let representative: Variable = rows
                    .iter()
                    .map(|&r| input.row(r as usize).lineage[leftmost_col].0)
                    .min()
                    .expect("group is non-empty");
                let exemplar = input.row(rows[0] as usize);
                for j in 0..dw {
                    dseg[local * dw + j] = exemplar.data[j].clone();
                }
                for (e, &c) in kept_cols.iter().enumerate() {
                    lseg[local * lw + e] = if c == leftmost_col {
                        (representative, probs[g])
                    } else {
                        exemplar.lineage[c]
                    };
                }
            }
        },
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_confidences;
    use crate::grp::grp_confidences;
    use pdb_exec::fixtures::fig1_catalog;
    use pdb_exec::pipeline::evaluate_join_order;
    use pdb_query::cq::intro_query_q;
    use pdb_query::reduct::query_signature;
    use pdb_query::FdSet;
    use pdb_storage::tuple;

    fn order(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn non_one_scan_signature_needs_multiple_scans_and_is_exact() {
        // Without key constraints the Boolean intro query's signature is
        // (Cust*(Ord*Item*)*)*, which needs 3 scans (Example V.11).
        let catalog = fig1_catalog();
        let q = intro_query_q().boolean_version();
        let answer = evaluate_join_order(&q, &catalog, &order(&["Cust", "Ord", "Item"])).unwrap();
        let sig = query_signature(&q, &FdSet::empty()).unwrap();
        assert_eq!(sig.scan_count(), 3);
        let conf = multi_scan_confidences(&answer, &sig).unwrap();
        assert_eq!(conf.len(), 1);
        assert!((conf[0].1 - 0.0028).abs() < 1e-12);
    }

    #[test]
    fn multi_scan_handles_one_scan_signatures_too() {
        let catalog = fig1_catalog();
        let q = intro_query_q();
        let answer = evaluate_join_order(&q, &catalog, &order(&["Cust", "Ord", "Item"])).unwrap();
        // Without FDs the non-Boolean reduct still needs 2 scans; with the
        // per-bag refinement the final confidence must match the oracle.
        let sig = query_signature(&q, &FdSet::empty()).unwrap();
        let conf = multi_scan_confidences(&answer, &sig).unwrap();
        assert_eq!(conf.len(), 1);
        assert_eq!(conf[0].0, tuple!["1995-01-10"]);
        assert!((conf[0].1 - 0.0028).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_grp_and_brute_force_without_selections() {
        let catalog = fig1_catalog();
        let mut q = intro_query_q();
        q.predicates.clear();
        let answer = evaluate_join_order(&q, &catalog, &order(&["Ord", "Item", "Cust"])).unwrap();
        let sig = query_signature(&q, &FdSet::empty()).unwrap();
        let ours = multi_scan_confidences(&answer, &sig).unwrap();
        let reference = grp_confidences(&answer, &sig).unwrap();
        let oracle = brute_force_confidences(&answer);
        assert_eq!(ours.len(), oracle.len());
        for ((t1, p1), ((t2, p2), (t3, p3))) in ours.iter().zip(reference.iter().zip(oracle.iter()))
        {
            assert_eq!(t1, t2);
            assert_eq!(t1, t3);
            assert!(
                (p1 - p3).abs() < 1e-9,
                "{t1}: multi-scan {p1} vs oracle {p3}"
            );
            assert!((p2 - p3).abs() < 1e-9, "{t1}: grp {p2} vs oracle {p3}");
        }
    }

    #[test]
    fn pre_aggregation_reduces_row_count() {
        let catalog = fig1_catalog();
        let mut q = intro_query_q();
        q.predicates.clear();
        let answer = evaluate_join_order(&q, &catalog, &order(&["Cust", "Ord", "Item"])).unwrap();
        let step = Signature::star(Signature::table("Item"));
        let reduced = apply_pre_aggregation(&answer, &step).unwrap();
        assert!(reduced.len() < answer.len());
        assert_eq!(reduced.relations(), answer.relations());
    }

    #[test]
    fn parallel_pre_aggregation_is_identical_to_sequential() {
        let catalog = fig1_catalog();
        let mut q = intro_query_q();
        q.predicates.clear();
        let answer = evaluate_join_order(&q, &catalog, &order(&["Cust", "Ord", "Item"])).unwrap();
        let step = Signature::star(Signature::table("Item"));
        let sequential = apply_pre_aggregation_with(&answer, &step, &Pool::sequential()).unwrap();
        for threads in [2, 4, 8] {
            let parallel = apply_pre_aggregation_with(&answer, &step, &Pool::new(threads)).unwrap();
            assert_eq!(sequential, parallel, "{threads} threads");
        }
        // And the full multi-scan pipeline agrees at every thread count.
        let sig = query_signature(&q, &FdSet::empty()).unwrap();
        let seq = multi_scan_confidences_with(&answer, &sig, &Pool::sequential()).unwrap();
        for threads in [2, 4, 8] {
            let par = multi_scan_confidences_with(&answer, &sig, &Pool::new(threads)).unwrap();
            assert_eq!(seq.len(), par.len());
            for ((t1, p1), (t2, p2)) in seq.iter().zip(par.iter()) {
                assert_eq!(t1, t2);
                assert_eq!(p1.to_bits(), p2.to_bits(), "{threads} threads: {t1}");
            }
        }
    }

    #[test]
    fn empty_answer_short_circuits() {
        let catalog = fig1_catalog();
        let mut q = intro_query_q();
        q.predicates[0].constant = pdb_storage::Value::str("Nobody");
        let answer = evaluate_join_order(&q, &catalog, &order(&["Cust", "Ord", "Item"])).unwrap();
        let sig = query_signature(&q, &FdSet::empty()).unwrap();
        assert!(multi_scan_confidences(&answer, &sig).unwrap().is_empty());
    }
}
