//! The GRP-sequence semantics of the confidence operator (Fig. 5).
//!
//! The operator is "semantically equivalent to a sequence of standard
//! distinct and group-by operators that work on the variable and probability
//! columns of probabilistic tables". This module implements exactly that
//! translation: every star of the signature becomes one aggregation (`GRP`)
//! that groups on all remaining columns and combines the probabilities of the
//! grouped variable column; every concatenation becomes a propagation step
//! that multiplies probability columns and drops the absorbed ones (Fig. 6).
//!
//! This is the reference implementation: simple, obviously faithful to the
//! paper, and the baseline the low-level one-scan operator is measured
//! against (`bench/ablation_onescan_vs_grp`).
//!
//! Every aggregation group contains the answer's data columns in its key, so
//! no group ever spans two distinct answer tuples. Bags of duplicates are
//! therefore independent, and [`grp_confidences_with`] fans contiguous bag
//! ranges out across the worker pool — with identical results at every
//! thread count.

use std::collections::BTreeMap;

use pdb_exec::Annotated;
use pdb_lineage::independent_or;
use pdb_par::{partition_by_weight, Pool};
use pdb_query::Signature;
use pdb_storage::{Tuple, Variable};

use crate::error::{ConfError, ConfResult};

/// One bag of duplicates: the distinct data tuple plus the answer row
/// indices of its derivations.
type Bag = (Tuple, Vec<u32>);

/// Working representation: data tuple plus one `(variable, probability)` pair
/// per still-active relation column.
struct WorkTable {
    relations: Vec<String>,
    rows: Vec<(Tuple, Vec<(Variable, f64)>)>,
}

impl WorkTable {
    fn relation_index(&self, name: &str) -> ConfResult<usize> {
        self.relations
            .iter()
            .position(|r| r == name)
            .ok_or_else(|| ConfError::MissingLineage(name.to_string()))
    }

    /// The aggregation step `Jα*K` for the variable column of `relation`:
    /// group by the data columns and every *other* variable column, choose
    /// the minimal variable of the group as representative (`min(V)` in
    /// Fig. 5) and combine the probabilities of the group's *distinct*
    /// variables as independent events (`prob(P)`).
    fn aggregate(&mut self, relation: &str) -> ConfResult<()> {
        type GroupKey = (Tuple, Vec<Variable>);
        let idx = self.relation_index(relation)?;
        let mut groups: BTreeMap<GroupKey, BTreeMap<Variable, f64>> = BTreeMap::new();
        let mut exemplars: BTreeMap<GroupKey, Vec<(Variable, f64)>> = BTreeMap::new();
        for (data, lineage) in &self.rows {
            let others: Vec<Variable> = lineage
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != idx)
                .map(|(_, (v, _))| *v)
                .collect();
            let key = (data.clone(), others);
            groups
                .entry(key.clone())
                .or_default()
                .insert(lineage[idx].0, lineage[idx].1);
            exemplars.entry(key).or_insert_with(|| lineage.clone());
        }
        let mut rows = Vec::with_capacity(groups.len());
        for (key, members) in groups {
            let mut lineage = exemplars
                .remove(&key)
                .expect("every group has an exemplar row");
            let representative = *members.keys().next().expect("groups are non-empty");
            let prob = independent_or(members.values().copied());
            lineage[idx] = (representative, prob);
            rows.push((key.0, lineage));
        }
        self.rows = rows;
        Ok(())
    }

    /// The propagation step `JαβK`: multiply the probability column of
    /// `source` into the probability column of `target` and drop `source`.
    fn propagate(&mut self, target: &str, source: &str) -> ConfResult<()> {
        let target_idx = self.relation_index(target)?;
        let source_idx = self.relation_index(source)?;
        for (_, lineage) in &mut self.rows {
            lineage[target_idx].1 *= lineage[source_idx].1;
            lineage.remove(source_idx);
        }
        self.relations.remove(source_idx);
        Ok(())
    }
}

/// Recursively evaluates the signature, returning the relation whose
/// variable/probability column carries the result of the evaluated
/// subexpression (the "last table encountered in the bottom-up traversal" of
/// Fig. 5).
fn eval(sig: &Signature, table: &mut WorkTable) -> ConfResult<String> {
    match sig {
        Signature::Table(r) => Ok(r.clone()),
        Signature::Star(inner) => {
            let rel = eval(inner, table)?;
            table.aggregate(&rel)?;
            Ok(rel)
        }
        Signature::Concat(parts) => {
            // Fig. 5 evaluates β before α in JαβK: process right-to-left.
            let mut evaluated = Vec::with_capacity(parts.len());
            for part in parts.iter().rev() {
                evaluated.push(eval(part, table)?);
            }
            evaluated.reverse();
            let target = evaluated[0].clone();
            for source in &evaluated[1..] {
                table.propagate(&target, source)?;
            }
            Ok(target)
        }
    }
}

/// Computes `(distinct answer tuple, confidence)` pairs by executing the
/// signature as a sequence of aggregation and propagation steps (Fig. 5/6),
/// using the default worker pool.
///
/// # Errors
/// Fails if the signature references a relation without a lineage column in
/// `answer`.
pub fn grp_confidences(answer: &Annotated, signature: &Signature) -> ConfResult<Vec<(Tuple, f64)>> {
    grp_confidences_with(answer, signature, &Pool::from_env().for_items(answer.len()))
}

/// [`grp_confidences`] with an explicit worker pool. Rows are partitioned
/// into bags of duplicates (distinct data tuples, in tuple order), the GRP
/// sequence runs per contiguous bag range, and the per-range results
/// concatenate in bag order — identical output at every pool size.
///
/// # Errors
/// Fails if the signature references a relation without a lineage column in
/// `answer`.
pub fn grp_confidences_with(
    answer: &Annotated,
    signature: &Signature,
    pool: &Pool,
) -> ConfResult<Vec<(Tuple, f64)>> {
    if answer.is_empty() {
        return Ok(Vec::new());
    }
    // Bags as row-index lists: rows are cloned into WorkTables only once,
    // by the worker that owns the bag.
    let mut bags: BTreeMap<Tuple, Vec<u32>> = BTreeMap::new();
    for (i, row) in answer.iter().enumerate() {
        bags.entry(row.data_tuple()).or_default().push(i as u32);
    }
    let bags: Vec<Bag> = bags.into_iter().collect();
    let mut bag_starts = Vec::with_capacity(bags.len());
    let mut total = 0usize;
    for (_, rows) in &bags {
        bag_starts.push(total);
        total += rows.len();
    }
    let chunks = partition_by_weight(&bag_starts, total, pool.threads());
    let per_chunk: Vec<ConfResult<Vec<(Tuple, f64)>>> = pool.map_ranges(&chunks, |range| {
        grp_over_bags(answer, &bags[range], signature)
    });
    let mut out = Vec::with_capacity(bags.len());
    for chunk in per_chunk {
        out.extend(chunk?);
    }
    Ok(out)
}

/// Runs the full GRP sequence over a contiguous slice of bags. Because every
/// aggregation key includes the data tuple, evaluating a subset of bags is
/// exactly the global evaluation restricted to them.
fn grp_over_bags(
    answer: &Annotated,
    bags: &[Bag],
    signature: &Signature,
) -> ConfResult<Vec<(Tuple, f64)>> {
    let mut table = WorkTable {
        relations: answer.relations().to_vec(),
        rows: bags
            .iter()
            .flat_map(|(tuple, rows)| {
                rows.iter()
                    .map(move |&i| (tuple.clone(), answer.row(i as usize).lineage.to_vec()))
            })
            .collect(),
    };
    let result_rel = eval(signature, &mut table)?;
    let result_idx = table.relation_index(&result_rel)?;
    // One final grouping on the data columns: with a correct signature every
    // bag of duplicates has been reduced to a single row; if several rows
    // remain their representative variables describe independent events and
    // are combined accordingly.
    let mut out: BTreeMap<Tuple, Vec<f64>> = BTreeMap::new();
    for (data, lineage) in &table.rows {
        out.entry(data.clone())
            .or_default()
            .push(lineage[result_idx].1);
    }
    Ok(out
        .into_iter()
        .map(|(tuple, probs)| {
            let p = if probs.len() == 1 {
                probs[0]
            } else {
                independent_or(probs)
            };
            (tuple, p)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_confidences;
    use pdb_exec::fixtures::{fig1_catalog, fig1_catalog_with_keys};
    use pdb_exec::pipeline::evaluate_join_order;
    use pdb_query::cq::intro_query_q;
    use pdb_query::reduct::query_signature;
    use pdb_query::FdSet;
    use pdb_storage::tuple;

    fn order(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn intro_query_without_fds_matches_example_v1() {
        let catalog = fig1_catalog();
        let q = intro_query_q();
        let answer = evaluate_join_order(&q, &catalog, &order(&["Cust", "Ord", "Item"])).unwrap();
        let sig = query_signature(&q, &FdSet::empty()).unwrap();
        let conf = grp_confidences(&answer, &sig).unwrap();
        assert_eq!(conf.len(), 1);
        assert_eq!(conf[0].0, tuple!["1995-01-10"]);
        assert!((conf[0].1 - 0.0028).abs() < 1e-12);
    }

    #[test]
    fn refined_signature_with_keys_gives_the_same_confidence() {
        let catalog = fig1_catalog_with_keys();
        let q = intro_query_q();
        let answer = evaluate_join_order(&q, &catalog, &order(&["Item", "Ord", "Cust"])).unwrap();
        let fds = FdSet::from_catalog_decls(&catalog.fds());
        let sig = query_signature(&q, &fds).unwrap();
        assert_eq!(sig.scan_count(), 1);
        let conf = grp_confidences(&answer, &sig).unwrap();
        assert_eq!(conf.len(), 1);
        assert!((conf[0].1 - 0.0028).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_brute_force_on_fig1_variants() {
        // Compare against the oracle on several query variants (different
        // selection constants produce different duplicate structures).
        let catalog = fig1_catalog();
        for (name, discount) in [("Joe", 0.0), ("Dan", 0.0), ("Li", 0.05), ("Mo", 0.0)] {
            let mut q = intro_query_q();
            q.predicates[0].constant = pdb_storage::Value::str(name);
            q.predicates[1].constant = pdb_storage::Value::Float(discount);
            let answer =
                evaluate_join_order(&q, &catalog, &order(&["Cust", "Ord", "Item"])).unwrap();
            let sig = query_signature(&q, &FdSet::empty()).unwrap();
            let ours = grp_confidences(&answer, &sig).unwrap();
            let oracle = brute_force_confidences(&answer);
            assert_eq!(ours.len(), oracle.len(), "query for {name}");
            for ((t1, p1), (t2, p2)) in ours.iter().zip(oracle.iter()) {
                assert_eq!(t1, t2);
                assert!((p1 - p2).abs() < 1e-9, "{name}: {p1} vs {p2}");
            }
        }
    }

    #[test]
    fn parallel_grp_is_identical_to_sequential() {
        let catalog = fig1_catalog();
        let mut q = intro_query_q();
        q.predicates.clear();
        let answer = evaluate_join_order(&q, &catalog, &order(&["Cust", "Ord", "Item"])).unwrap();
        let sig = query_signature(&q, &FdSet::empty()).unwrap();
        let seq = grp_confidences_with(&answer, &sig, &pdb_par::Pool::sequential()).unwrap();
        for threads in [2, 4, 8] {
            let par = grp_confidences_with(&answer, &sig, &pdb_par::Pool::new(threads)).unwrap();
            assert_eq!(seq.len(), par.len());
            for ((t1, p1), (t2, p2)) in seq.iter().zip(par.iter()) {
                assert_eq!(t1, t2);
                assert_eq!(p1.to_bits(), p2.to_bits(), "{threads} threads: {t1}");
            }
        }
    }

    #[test]
    fn empty_answer_produces_no_rows() {
        let catalog = fig1_catalog();
        let mut q = intro_query_q();
        q.predicates[0].constant = pdb_storage::Value::str("Nobody");
        let answer = evaluate_join_order(&q, &catalog, &order(&["Cust", "Ord", "Item"])).unwrap();
        let sig = query_signature(&q, &FdSet::empty()).unwrap();
        assert!(grp_confidences(&answer, &sig).unwrap().is_empty());
    }

    #[test]
    fn missing_lineage_column_is_reported() {
        let catalog = fig1_catalog();
        let q = intro_query_q();
        let answer = evaluate_join_order(&q, &catalog, &order(&["Cust", "Ord", "Item"])).unwrap();
        let sig = Signature::star(Signature::table("Nation"));
        assert!(matches!(
            grp_confidences(&answer, &sig),
            Err(ConfError::MissingLineage(_))
        ));
    }
}
