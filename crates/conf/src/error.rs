//! Error type for confidence computation.

use std::fmt;

use pdb_exec::ExecError;
use pdb_govern::{SproutError, Stage};
use pdb_par::TaskFailure;
use pdb_query::QueryError;

/// Errors raised by the confidence-computation operator.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfError {
    /// The signature references a relation whose lineage column is missing
    /// from the annotated input.
    MissingLineage(String),
    /// The signature does not have the 1scan property but a single-scan
    /// evaluation was requested.
    NotOneScan(String),
    /// An unsafe query's lineage is provably not read-once and the
    /// [`ApproxPolicy::Exact`](crate::ApproxPolicy::Exact) policy forbids
    /// falling back to dissociation bounds.
    NotReadOnce(String),
    /// Error from the static query analysis (signature/1scanTree building).
    Query(QueryError),
    /// Error from the execution substrate.
    Exec(ExecError),
    /// The query governor interrupted confidence computation (cancellation,
    /// deadline, memory budget) or a worker panicked and was isolated.
    Governed(SproutError),
}

impl ConfError {
    /// Converts a [`pdb_par`] task failure into a conf error: a task that
    /// returned `Err` propagates its error verbatim; a task that panicked is
    /// isolated into [`SproutError::WorkerPanic`] naming the `stage` and the
    /// work item.
    pub fn from_task_failure(stage: Stage, failure: TaskFailure<ConfError>) -> ConfError {
        match failure {
            TaskFailure::Err { error, .. } => error,
            TaskFailure::Panic { item, message } => ConfError::Governed(SproutError::WorkerPanic {
                stage,
                item,
                message,
            }),
        }
    }
}

impl fmt::Display for ConfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfError::MissingLineage(r) => {
                write!(f, "annotated input has no lineage column for relation {r}")
            }
            ConfError::NotOneScan(s) => {
                write!(f, "signature {s} does not have the 1scan property")
            }
            ConfError::NotReadOnce(s) => {
                write!(f, "exact policy admits no plan: {s}")
            }
            ConfError::Query(e) => write!(f, "query analysis error: {e}"),
            ConfError::Exec(e) => write!(f, "execution error: {e}"),
            ConfError::Governed(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ConfError {}

impl From<QueryError> for ConfError {
    fn from(e: QueryError) -> Self {
        ConfError::Query(e)
    }
}

impl From<ExecError> for ConfError {
    fn from(e: ExecError) -> Self {
        // A governed interruption keeps its identity across layers instead
        // of burying itself inside an Exec wrapper.
        match e {
            ExecError::Governed(g) => ConfError::Governed(g),
            other => ConfError::Exec(other),
        }
    }
}

impl From<SproutError> for ConfError {
    fn from(e: SproutError) -> Self {
        ConfError::Governed(e)
    }
}

/// Convenience result alias.
pub type ConfResult<T> = Result<T, ConfError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: ConfError = QueryError::EmptyQuery.into();
        assert!(e.to_string().contains("query analysis"));
        let e: ConfError = ExecError::UnknownColumn("a".into()).into();
        assert!(e.to_string().contains("execution"));
        assert!(ConfError::MissingLineage("Ord".into())
            .to_string()
            .contains("Ord"));
        assert!(ConfError::NotOneScan("(R*S*)*".into())
            .to_string()
            .contains("1scan"));
    }
}
