//! The pre-PR-2 recursive one-scan implementation, retained for A/B
//! benchmarking and regression tests (the same role `pdb_exec::baseline`
//! plays for the relational operators).
//!
//! This is the seed shape of the Fig. 8 machine: a recursive
//! `propagate`/`flush` over an arena of nodes that own `children` vectors —
//! cloned on every visit, i.e. O(rows × nodes) allocations per scan — driven
//! over a full sorted *copy* of the answer relation. The flat, iterative,
//! permutation-scanning engine in [`crate::one_scan`] replaces it; `bench_pr2`
//! measures the two against each other and the test suite asserts they agree.

use pdb_exec::{Annotated, RowRef};
use pdb_query::{OneScanTree, Signature};
use pdb_storage::{Tuple, Variable};

use crate::error::{ConfError, ConfResult};

/// A node of the run-time 1scanTree, stored in preorder in an arena.
#[derive(Debug, Clone)]
struct Node {
    /// Index of this node's variable column in the annotated input's lineage.
    lineage_col: usize,
    /// Children, as arena indices.
    children: Vec<usize>,
    enabled: bool,
    crt_p: f64,
    all_p: f64,
}

/// Run-time state of the recursive one-scan operator.
#[derive(Debug)]
struct ScanState {
    nodes: Vec<Node>,
}

impl ScanState {
    fn new(tree: &OneScanTree, answer: &Annotated) -> ConfResult<ScanState> {
        let mut nodes = Vec::new();
        build_arena(tree, answer, &mut nodes)?;
        Ok(ScanState { nodes })
    }

    fn reset(&mut self) {
        for n in &mut self.nodes {
            n.enabled = true;
            n.crt_p = 0.0;
            n.all_p = 0.0;
        }
    }

    fn propagate(&mut self, node: usize, i: usize, row: RowRef<'_>) {
        for child_pos in 0..self.nodes[node].children.len() {
            let child = self.nodes[node].children[child_pos];
            self.propagate(child, i, row);
        }
        let index = node; // preorder arena layout: arena index == column index
        if !self.nodes[node].enabled || index < i {
            return;
        }
        let is_leaf = self.nodes[node].children.is_empty();
        let row_prob = row.lineage[self.nodes[node].lineage_col].1;
        if is_leaf && index == i {
            let crt = self.nodes[node].crt_p;
            self.nodes[node].crt_p = 1.0 - (1.0 - crt) * (1.0 - row_prob);
        } else {
            let children = self.nodes[node].children.clone();
            let mut crt = self.nodes[node].crt_p;
            for c in children {
                crt *= self.nodes[c].all_p;
            }
            let all = self.nodes[node].all_p;
            self.nodes[node].all_p = 1.0 - (1.0 - crt) * (1.0 - all);
            if index == i {
                self.for_each_descendant(node, |state, d| {
                    let col = state.nodes[d].lineage_col;
                    state.nodes[d].enabled = true;
                    state.nodes[d].all_p = 0.0;
                    state.nodes[d].crt_p = row.lineage[col].1;
                });
                self.nodes[node].crt_p = row_prob;
            } else {
                self.nodes[node].enabled = false;
                self.for_each_descendant(node, |state, d| {
                    state.nodes[d].enabled = false;
                });
            }
        }
    }

    fn flush(&mut self) -> f64 {
        self.flush_node(0);
        self.nodes[0].all_p
    }

    fn flush_node(&mut self, node: usize) {
        for child_pos in 0..self.nodes[node].children.len() {
            let child = self.nodes[node].children[child_pos];
            self.flush_node(child);
        }
        if !self.nodes[node].enabled {
            return;
        }
        let children = self.nodes[node].children.clone();
        let mut crt = self.nodes[node].crt_p;
        for c in children {
            crt *= self.nodes[c].all_p;
        }
        let all = self.nodes[node].all_p;
        self.nodes[node].all_p = 1.0 - (1.0 - crt) * (1.0 - all);
    }

    fn for_each_descendant(&mut self, node: usize, mut f: impl FnMut(&mut ScanState, usize)) {
        let mut stack: Vec<usize> = self.nodes[node].children.clone();
        while let Some(d) = stack.pop() {
            stack.extend(self.nodes[d].children.iter().copied());
            f(self, d);
        }
    }
}

fn build_arena(tree: &OneScanTree, answer: &Annotated, arena: &mut Vec<Node>) -> ConfResult<usize> {
    let lineage_col = answer
        .relation_index(&tree.table)
        .map_err(|_| ConfError::MissingLineage(tree.table.clone()))?;
    let idx = arena.len();
    arena.push(Node {
        lineage_col,
        children: Vec::new(),
        enabled: true,
        crt_p: 0.0,
        all_p: 0.0,
    });
    for child in &tree.children {
        let child_idx = build_arena(child, answer, arena)?;
        arena[idx].children.push(child_idx);
    }
    Ok(idx)
}

/// The seed one-scan pipeline: physically materialise a sorted copy of the
/// answer (PR-1 comparator sort over the normalized key runs — the packed
/// radix fast path added in PR 2 is deliberately *not* used, so this stays
/// a faithful A/B baseline), then run the recursive Fig. 8 machine over it.
///
/// # Errors
/// Fails if the signature lacks the 1scan property or references a relation
/// without a lineage column.
pub fn one_scan_confidences_recursive(
    answer: &Annotated,
    signature: &Signature,
) -> ConfResult<Vec<(Tuple, f64)>> {
    if !signature.is_one_scan() {
        return Err(ConfError::NotOneScan(signature.to_string()));
    }
    let tree = OneScanTree::build(signature).map_err(ConfError::from)?;
    let col_idx: Vec<usize> = (0..answer.data_width()).collect();
    let rel_idx: Vec<usize> = tree
        .preorder()
        .iter()
        .map(|r| {
            answer
                .relation_index(r)
                .map_err(|_| ConfError::MissingLineage(r.clone()))
        })
        .collect::<ConfResult<_>>()?;
    // The baseline is the A/B control: its key build stays sequential even
    // now that `Annotated::sort_keys` defaults to the worker pool.
    let keys = answer.sort_keys_with(&col_idx, &rel_idx, &pdb_par::Pool::sequential());
    let order =
        pdb_par::sorted_permutation_by(answer.len(), &pdb_par::Pool::sequential(), |a, b| {
            keys.row(a as usize).cmp(keys.row(b as usize))
        });
    let mut sorted = Annotated::with_row_capacity(
        answer.schema().clone(),
        answer.relations().to_vec(),
        answer.len(),
    );
    for &i in &order {
        let row = answer.row(i as usize);
        sorted.push_row(row.data, row.lineage);
    }
    one_scan_confidences_presorted_recursive(&sorted, signature)
}

/// The recursive scan over an already physically sorted answer.
///
/// # Errors
/// Fails if the signature lacks the 1scan property or references a relation
/// without a lineage column.
pub fn one_scan_confidences_presorted_recursive(
    answer: &Annotated,
    signature: &Signature,
) -> ConfResult<Vec<(Tuple, f64)>> {
    if answer.is_empty() {
        return Ok(Vec::new());
    }
    if !signature.is_one_scan() {
        return Err(ConfError::NotOneScan(signature.to_string()));
    }
    let tree = OneScanTree::build(signature).map_err(ConfError::from)?;
    let mut state = ScanState::new(&tree, answer)?;
    let preorder_cols: Vec<usize> = state.nodes.iter().map(|n| n.lineage_col).collect();

    let mut out = Vec::new();
    let mut prev: Option<RowRef<'_>> = None;
    for row in answer.iter() {
        match prev {
            None => {
                state.reset();
                state.propagate(0, 0, row);
            }
            Some(p) if p.data != row.data => {
                out.push((p.data_tuple(), state.flush()));
                state.reset();
                state.propagate(0, 0, row);
            }
            Some(p) => {
                if let Some(i) = leftmost_changed(&preorder_cols, p, row) {
                    state.propagate(0, i, row);
                }
            }
        }
        prev = Some(row);
    }
    if let Some(p) = prev {
        out.push((p.data_tuple(), state.flush()));
    }
    Ok(out)
}

fn leftmost_changed(
    preorder_cols: &[usize],
    prev: RowRef<'_>,
    current: RowRef<'_>,
) -> Option<usize> {
    for (pos, &col) in preorder_cols.iter().enumerate() {
        let a: Variable = prev.lineage[col].0;
        let b: Variable = current.lineage[col].0;
        if a != b {
            return Some(pos);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_confidences;
    use pdb_exec::fixtures::fig1_catalog_with_keys;
    use pdb_exec::pipeline::evaluate_join_order;
    use pdb_query::cq::intro_query_q;
    use pdb_query::reduct::query_signature;
    use pdb_query::FdSet;

    #[test]
    fn recursive_baseline_still_matches_the_oracle() {
        let catalog = fig1_catalog_with_keys();
        let mut q = intro_query_q();
        q.predicates.clear();
        let order: Vec<String> = ["Cust", "Ord", "Item"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let answer = evaluate_join_order(&q, &catalog, &order).unwrap();
        let fds = FdSet::from_catalog_decls(&catalog.fds());
        let sig = query_signature(&q, &fds).unwrap();
        let ours = one_scan_confidences_recursive(&answer, &sig).unwrap();
        let oracle = brute_force_confidences(&answer);
        assert_eq!(ours.len(), oracle.len());
        for ((t1, p1), (t2, p2)) in ours.iter().zip(oracle.iter()) {
            assert_eq!(t1, t2);
            assert!((p1 - p2).abs() < 1e-9);
        }
    }
}
