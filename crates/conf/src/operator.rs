//! The public confidence-computation operator.
//!
//! [`ConfidenceOperator`] bundles a query signature with the machinery that
//! evaluates it over a lineage-annotated answer. The default
//! [`Strategy::Auto`] picks the streaming one-scan algorithm when the
//! signature allows it and falls back to the multi-scan schedule otherwise —
//! exactly the decision procedure of Section V.C. The other strategies exist
//! for testing, ablation benchmarks, and the worked examples.

use std::fmt;
use std::sync::Arc;

use pdb_exec::Annotated;
use pdb_govern::{ExecContext, QueryGovernor, QueryObs, Stage};
use pdb_par::Pool;
use pdb_query::Signature;
use pdb_storage::Tuple;

use crate::anytime::{anytime_confidences_ctx, AnytimeConfig, ApproxPolicy, ApproxResult};
use crate::brute::brute_force_confidences;
use crate::error::ConfResult;
use crate::grp::grp_confidences_with;
use crate::multi_scan::multi_scan_confidences_ctx;
use crate::one_scan::{one_scan_confidences_ctx, SplitPolicy};

/// The evaluation strategy of the operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// One scan if the signature has the 1scan property, multi-scan otherwise.
    #[default]
    Auto,
    /// Force the streaming one-scan algorithm (fails on non-1scan signatures).
    OneScan,
    /// Force the multi-scan schedule.
    MultiScan,
    /// The declarative GRP-sequence semantics of Fig. 5.
    GrpSemantics,
    /// Exponential brute force over the lineage (testing / tiny inputs only).
    BruteForce,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::Auto => "auto",
            Strategy::OneScan => "one-scan",
            Strategy::MultiScan => "multi-scan",
            Strategy::GrpSemantics => "grp-semantics",
            Strategy::BruteForce => "brute-force",
        };
        f.write_str(s)
    }
}

/// The result of confidence computation: every distinct answer tuple paired
/// with its exact confidence, ordered by tuple.
pub type ConfidenceResult = Vec<(Tuple, f64)>;

/// A confidence-computation operator `[s]` for a fixed signature `s`.
///
/// The operator carries the worker pool its evaluation may fan out on
/// (bags of duplicate answer tuples are independent); results are identical
/// at every pool size, so the pool is a pure performance knob.
#[derive(Debug, Clone)]
pub struct ConfidenceOperator {
    signature: Signature,
    pool: Pool,
    split_policy: SplitPolicy,
    governor: Option<QueryGovernor>,
    obs: Option<Arc<QueryObs>>,
    approx: AnytimeConfig,
}

impl ConfidenceOperator {
    /// Creates an operator for the given signature, using the default worker
    /// pool (`SPROUT_THREADS`, or the machine's available parallelism).
    pub fn new(signature: Signature) -> Self {
        ConfidenceOperator::with_pool(signature, Pool::from_env())
    }

    /// Creates an operator with an explicit worker pool.
    pub fn with_pool(signature: Signature, pool: Pool) -> Self {
        ConfidenceOperator {
            signature,
            pool,
            split_policy: SplitPolicy::default(),
            governor: None,
            obs: None,
            approx: AnytimeConfig::new(ApproxPolicy::Exact),
        }
    }

    /// Attaches a [`QueryGovernor`]: subsequent [`compute`](Self::compute)
    /// calls observe its cancellation token, deadline, and memory budget at
    /// every bag-boundary checkpoint, returning
    /// [`ConfError::Governed`](crate::ConfError::Governed) when interrupted.
    pub fn with_governor(mut self, governor: QueryGovernor) -> Self {
        self.governor = Some(governor);
        self
    }

    /// Attaches a per-query observability collector: subsequent
    /// [`compute`](Self::compute) / [`compute_anytime`](Self::compute_anytime)
    /// calls tally bag/frontier counters into it (and record spans when the
    /// collector has tracing enabled).
    pub fn with_obs(mut self, obs: Arc<QueryObs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Sets the intra-bag [`SplitPolicy`]: how many rows one bag of
    /// duplicate answer tuples must have before its evaluation is split at
    /// root-variable boundaries across the pool. A pure performance knob —
    /// results are bitwise-identical for every policy and pool size.
    pub fn with_split_policy(mut self, policy: SplitPolicy) -> Self {
        self.split_policy = policy;
        self
    }

    /// Sets the [`ApproxPolicy`] consulted by
    /// [`compute_anytime`](Self::compute_anytime). Signature-driven
    /// [`compute`](Self::compute) is always exact and ignores the policy.
    pub fn with_approx_policy(mut self, policy: ApproxPolicy) -> Self {
        self.approx.policy = policy;
        self
    }

    /// Sets the seed of the anytime refinement tie-breaker (deterministic
    /// per seed at every pool size).
    pub fn with_approx_seed(mut self, seed: u64) -> Self {
        self.approx.seed = seed;
        self
    }

    /// The operator's signature.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The worker pool the operator evaluates on.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The operator's intra-bag split policy.
    pub fn split_policy(&self) -> SplitPolicy {
        self.split_policy
    }

    /// The operator's unsafe-query approximation policy.
    pub fn approx_policy(&self) -> ApproxPolicy {
        self.approx.policy
    }

    /// The governor attached via [`with_governor`](Self::with_governor), if any.
    pub fn governor(&self) -> Option<&QueryGovernor> {
        self.governor.as_ref()
    }

    /// Number of scans the operator needs (Proposition V.10).
    pub fn scans(&self) -> usize {
        self.signature.scan_count()
    }

    /// Computes the distinct answer tuples and their confidences.
    ///
    /// # Errors
    /// Fails if the signature references relations missing from the answer,
    /// or if [`Strategy::OneScan`] is forced on a non-1scan signature.
    pub fn compute(&self, answer: &Annotated, strategy: Strategy) -> ConfResult<ConfidenceResult> {
        let pool = &self.pool.for_items(answer.len());
        let policy = self.split_policy;
        let ctx =
            ExecContext::from_governor(self.governor.as_ref()).with_obs_opt(self.obs.as_ref());
        let _span = ctx.span_with("conf", strategy.to_string());
        match strategy {
            Strategy::Auto => {
                if self.signature.is_one_scan() {
                    one_scan_confidences_ctx(answer, &self.signature, pool, policy, &ctx)
                } else {
                    multi_scan_confidences_ctx(answer, &self.signature, pool, policy, &ctx)
                }
            }
            Strategy::OneScan => {
                one_scan_confidences_ctx(answer, &self.signature, pool, policy, &ctx)
            }
            Strategy::MultiScan => {
                multi_scan_confidences_ctx(answer, &self.signature, pool, policy, &ctx)
            }
            // The sequential reference strategies check the governor once on
            // entry; they exist for testing and tiny inputs only.
            Strategy::GrpSemantics => {
                ctx.checkpoint(Stage::Confidence, "conf.bag", 0)?;
                grp_confidences_with(answer, &self.signature, pool)
            }
            Strategy::BruteForce => {
                ctx.checkpoint(Stage::Confidence, "conf.bag", 0)?;
                Ok(brute_force_confidences(answer))
            }
        }
    }

    /// Computes confidence *brackets* from lineage alone — the evaluator for
    /// queries without a safe plan, where the signature machinery does not
    /// apply. Per-tuple DNFs that factor read-once are exact; the rest get
    /// anytime dissociation bounds under the operator's [`ApproxPolicy`]
    /// (an error under [`ApproxPolicy::Exact`]).
    ///
    /// # Errors
    /// Fails with [`ConfError::NotReadOnce`](crate::ConfError::NotReadOnce)
    /// when the policy is `Exact` and some tuple's lineage is provably not
    /// read-once, and on governor cancellation. A governor *deadline* during
    /// bounds refinement returns the best bounds so far instead.
    pub fn compute_anytime(&self, answer: &Annotated) -> ConfResult<ApproxResult> {
        let pool = self.pool.for_items(answer.len());
        let ctx =
            ExecContext::from_governor(self.governor.as_ref()).with_obs_opt(self.obs.as_ref());
        let _span = ctx.span("conf.bounds");
        anytime_confidences_ctx(answer, &self.approx, &pool, &ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_exec::fixtures::{fig1_catalog, fig1_catalog_with_keys};
    use pdb_exec::pipeline::evaluate_join_order;
    use pdb_query::cq::intro_query_q;
    use pdb_query::reduct::query_signature;
    use pdb_query::FdSet;

    fn order(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn all_strategies_agree_on_the_intro_query() {
        let catalog = fig1_catalog_with_keys();
        let q = intro_query_q();
        let answer = evaluate_join_order(&q, &catalog, &order(&["Cust", "Ord", "Item"])).unwrap();
        let fds = FdSet::from_catalog_decls(&catalog.fds());
        let op = ConfidenceOperator::new(query_signature(&q, &fds).unwrap());
        assert_eq!(op.scans(), 1);
        for strategy in [
            Strategy::Auto,
            Strategy::OneScan,
            Strategy::MultiScan,
            Strategy::GrpSemantics,
            Strategy::BruteForce,
        ] {
            let conf = op.compute(&answer, strategy).unwrap();
            assert_eq!(conf.len(), 1, "{strategy}");
            assert!((conf[0].1 - 0.0028).abs() < 1e-9, "{strategy}");
        }
    }

    #[test]
    fn auto_falls_back_to_multi_scan() {
        let catalog = fig1_catalog();
        let q = intro_query_q().boolean_version();
        let answer = evaluate_join_order(&q, &catalog, &order(&["Cust", "Ord", "Item"])).unwrap();
        let op = ConfidenceOperator::new(query_signature(&q, &FdSet::empty()).unwrap());
        assert_eq!(op.scans(), 3);
        let conf = op.compute(&answer, Strategy::Auto).unwrap();
        assert!((conf[0].1 - 0.0028).abs() < 1e-9);
        // Forcing one-scan on this signature is an error.
        assert!(op.compute(&answer, Strategy::OneScan).is_err());
    }

    #[test]
    fn strategy_display_names() {
        assert_eq!(Strategy::Auto.to_string(), "auto");
        assert_eq!(Strategy::OneScan.to_string(), "one-scan");
        assert_eq!(Strategy::default(), Strategy::Auto);
    }
}
