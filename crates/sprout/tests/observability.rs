//! The observability contract, end to end through the facade:
//!
//! * **Counter determinism** — every [`Counter`] total is bitwise-identical
//!   across worker pool sizes 1/2/4/8, and the backing-independent subset is
//!   additionally identical between the row and columnar backings, on the
//!   safe path, the eager path, and the intensional fallback (including the
//!   anytime frontier).
//! * **Tracing is pure telemetry** — running with a span-recording collector
//!   leaves answers and confidences bitwise-identical to an untraced run.
//! * **EXPLAIN** — the explained decision (safe vs. fallback, signature,
//!   join order, policy) matches what execution actually does.

use std::sync::Arc;

use pdb_exec::fixtures;
use pdb_query::cq::{intro_query_q, intro_query_q_prime};
use pdb_storage::{tuple, Catalog, ColumnarTable, DataType, ProbTable, Schema, Variable};
use sprout::{
    ApproxPolicy, CompareOp, ConjunctiveQuery, Counter, ExplainPath, PlanKind, Pool, Predicate,
    QueryObs, QueryOptions, RelationAtom, SproutDb,
};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A synthetic two-relation join, big enough that every pool size actually
/// splits it into morsels: `R(a)` with 2000 rows, `S(a, c)` with 4000 (join
/// fan-out 2), and a range predicate for the zone maps to prune on.
fn synthetic_tables() -> (ProbTable, ProbTable) {
    let r_schema = Schema::from_pairs(&[("a", DataType::Int)]).unwrap();
    let mut r = ProbTable::new(r_schema);
    for i in 0..2000i64 {
        r.insert(tuple![i], Variable(i as u64), 0.05 + (i % 9) as f64 * 0.1)
            .unwrap();
    }
    let s_schema = Schema::from_pairs(&[("a", DataType::Int), ("c", DataType::Str)]).unwrap();
    let mut s = ProbTable::new(s_schema);
    for i in 0..4000i64 {
        s.insert(
            tuple![i % 2000, format!("tag-{}", i % 37).as_str()],
            Variable(10_000 + i as u64),
            0.05 + (i % 7) as f64 * 0.1,
        )
        .unwrap();
    }
    (r, s)
}

fn synthetic_catalog(columnar: bool) -> Catalog {
    let (r, s) = synthetic_tables();
    let catalog = Catalog::new();
    for (name, table) in [("R", r), ("S", s)] {
        if columnar {
            let col = ColumnarTable::from_prob_table(&table, &Pool::sequential()).unwrap();
            catalog.register_columnar(name, col).unwrap();
        } else {
            catalog.register_table(name, table).unwrap();
        }
    }
    catalog
}

/// Boolean `Q() :- R(a), S(a, c), S.a < 1000` — hierarchical, so safe.
fn synthetic_query() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        vec![
            RelationAtom::new("R", &["a"]),
            RelationAtom::new("S", &["a", "c"]),
        ],
        vec![],
        vec![Predicate::new("S", "a", CompareOp::Lt, 1000i64)],
    )
    .unwrap()
}

/// Runs `query` under `opts_base` with a fresh collector at the given pool
/// size; returns the counter totals and the answer confidences' bit
/// patterns.
fn run_with_counters(
    db: &SproutDb,
    query: &ConjunctiveQuery,
    kind: PlanKind,
    policy: Option<ApproxPolicy>,
    threads: usize,
) -> ([u64; Counter::COUNT], Vec<u64>) {
    let obs = QueryObs::new();
    let opts = QueryOptions {
        kind: Some(kind),
        policy,
        pool: Some(Pool::new(threads)),
        obs: Some(Arc::clone(&obs)),
        ..QueryOptions::default()
    };
    let report = db.query_with_options(query, &opts).unwrap();
    let bits = match &report.approx {
        None => report
            .confidences
            .iter()
            .map(|(_, p)| p.to_bits())
            .collect(),
        Some(brackets) => brackets
            .iter()
            .flat_map(|b| [b.lo.to_bits(), b.hi.to_bits()])
            .collect(),
    };
    (obs.counter_values(), bits)
}

/// Asserts every pool size produces the same counters and answers, and
/// returns the shared counter vector.
fn thread_invariant(
    db: &SproutDb,
    query: &ConjunctiveQuery,
    kind: PlanKind,
    policy: Option<ApproxPolicy>,
) -> [u64; Counter::COUNT] {
    let (baseline, base_bits) = run_with_counters(db, query, kind.clone(), policy, THREADS[0]);
    for &threads in &THREADS[1..] {
        let (counters, bits) = run_with_counters(db, query, kind.clone(), policy, threads);
        assert_eq!(bits, base_bits, "answers diverged at {threads} threads");
        for c in Counter::ALL {
            assert_eq!(
                counters[c as usize],
                baseline[c as usize],
                "{} diverged at {threads} threads ({kind})",
                c.name()
            );
        }
    }
    baseline
}

#[test]
fn safe_path_counters_are_thread_and_backing_invariant() {
    let query = synthetic_query();
    for kind in [PlanKind::Lazy, PlanKind::Eager] {
        let row_db = SproutDb::from_catalog(synthetic_catalog(false));
        let col_db = SproutDb::from_catalog(synthetic_catalog(true));
        let row = thread_invariant(&row_db, &query, kind.clone(), None);
        let col = thread_invariant(&col_db, &query, kind.clone(), None);
        for c in Counter::ALL {
            if c.backing_independent() {
                assert_eq!(
                    row[c as usize],
                    col[c as usize],
                    "{} diverged between backings ({kind})",
                    c.name()
                );
            }
        }
        // The run did real work: the scans saw every R row and the
        // predicate's half of S, and the join probed what the scans
        // emitted.
        assert_eq!(row[Counter::RowsScanned as usize], 6000);
        assert!(row[Counter::RowsEmitted as usize] > 0);
        assert!(row[Counter::JoinProbes as usize] > 0);
        // The two families count their own confidence machinery: lazy runs
        // the bag scan at the end, eager aggregates along the query tree.
        match kind {
            PlanKind::Eager => assert!(row[Counter::EagerGroups as usize] > 0),
            _ => assert!(row[Counter::ConfBags as usize] > 0),
        }
        // Chunk decisions only exist on the columnar backing.
        assert_eq!(row[Counter::ChunksScanned as usize], 0);
        assert!(col[Counter::ChunksScanned as usize] > 0);
    }
}

#[test]
fn fallback_counters_are_thread_invariant_including_the_frontier() {
    // The chain query Q() :- R(b), S(b, c), T(c) with a P4 in its lineage:
    // not hierarchical, not read-once, so the anytime frontier actually
    // expands (FrontierNodes > 0) and its growth must not depend on the
    // pool size.
    let catalog = Catalog::new();
    let r_schema = Schema::from_pairs(&[("b", DataType::Int)]).unwrap();
    let mut r = ProbTable::new(r_schema);
    for b in 0..6i64 {
        r.insert(tuple![b], Variable(b as u64), 0.3 + (b % 3) as f64 * 0.2)
            .unwrap();
    }
    let s_schema = Schema::from_pairs(&[("b", DataType::Int), ("c", DataType::Int)]).unwrap();
    let mut s = ProbTable::new(s_schema);
    let mut var = 100;
    for b in 0..6i64 {
        for c in 0..6i64 {
            // A dense-but-irregular bipartite pattern keeps P4s around.
            if (b + c) % 2 == 0 || b == c {
                s.insert(
                    tuple![b, c],
                    Variable(var),
                    0.25 + ((b + c) % 4) as f64 * 0.15,
                )
                .unwrap();
                var += 1;
            }
        }
    }
    let t_schema = Schema::from_pairs(&[("c", DataType::Int)]).unwrap();
    let mut t = ProbTable::new(t_schema);
    for c in 0..6i64 {
        t.insert(
            tuple![c],
            Variable(200 + c as u64),
            0.2 + (c % 5) as f64 * 0.15,
        )
        .unwrap();
    }
    catalog.register_table("R", r).unwrap();
    catalog.register_table("S", s).unwrap();
    catalog.register_table("T", t).unwrap();
    let db = SproutDb::from_catalog(catalog);

    let query = ConjunctiveQuery::new(
        vec![
            RelationAtom::new("R", &["b"]),
            RelationAtom::new("S", &["b", "c"]),
            RelationAtom::new("T", &["c"]),
        ],
        vec![],
        vec![],
    )
    .unwrap();
    assert!(!db.is_tractable(&query));

    let policy = Some(ApproxPolicy::Bounds { eps: 1e-6 });
    let counters = thread_invariant(&db, &query, PlanKind::Lazy, policy);
    assert!(
        counters[Counter::FrontierNodes as usize] > 0,
        "the fixture was supposed to force frontier expansion"
    );
}

#[test]
fn tracing_leaves_answers_bitwise_identical() {
    let db = SproutDb::from_catalog(fixtures::fig1_catalog_with_keys());
    let plain = db.query(&intro_query_q(), PlanKind::Lazy).unwrap();

    let obs = QueryObs::with_tracing();
    let opts = QueryOptions {
        obs: Some(Arc::clone(&obs)),
        ..QueryOptions::default()
    };
    let traced = db.query_with_options(&intro_query_q(), &opts).unwrap();

    assert_eq!(plain.confidences.len(), traced.confidences.len());
    for (a, b) in plain.confidences.iter().zip(&traced.confidences) {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.to_bits(), b.1.to_bits());
    }

    // The trace exists and is shaped like the execution: a plan root whose
    // children include the tuple and confidence phases, with scans inside.
    let tree = obs.span_tree();
    assert!(!tree.is_empty());
    let plan = &tree[0];
    assert_eq!(plan.site, "plan");
    let child_sites: Vec<&str> = plan.children.iter().map(|n| n.site).collect();
    assert!(child_sites.contains(&"plan.tuples"), "{child_sites:?}");
    assert!(child_sites.contains(&"plan.confidence"), "{child_sites:?}");
    fn collect<'a>(nodes: &'a [sprout::SpanNode], out: &mut Vec<&'a str>) {
        for n in nodes {
            out.push(n.site);
            collect(&n.children, out);
        }
    }
    let mut all_sites = Vec::new();
    collect(&tree, &mut all_sites);
    assert!(all_sites.contains(&"scan"), "{all_sites:?}");
    assert!(all_sites.contains(&"conf"), "{all_sites:?}");
    // And the root span saw the whole run's deterministic counters.
    let rows: u64 = plan
        .counters
        .iter()
        .find(|(name, _)| *name == "rows_scanned")
        .map_or(0, |(_, v)| *v);
    assert_eq!(rows, obs.get(Counter::RowsScanned));
    assert!(rows > 0);
}

#[test]
fn explain_reports_the_decision_execution_takes() {
    // Safe path: the guiding query under the TPC-H keys.
    let db = SproutDb::from_catalog(fixtures::fig1_catalog_with_keys());
    let ex = db.explain(&intro_query_q(), PlanKind::Lazy).unwrap();
    assert_eq!(ex.path, ExplainPath::Safe);
    assert!(ex.tractable);
    assert_eq!(ex.signature.as_deref(), Some("(Cust (Ord Item*)*)*"));
    assert!(ex.scans.is_some());
    assert_eq!(ex.join_order.len(), 3);
    assert_eq!(ex.scan_details.len(), 3);
    assert!(ex.policy.is_none());
    assert!(ex.scan_details.iter().all(|s| s.backing == "row"));
    let rendered = ex.render();
    assert!(rendered.contains("plan: lazy (safe)"), "{rendered}");

    // Unsafe without a policy: explain fails exactly like execution.
    let keyless = SproutDb::from_catalog(fixtures::fig1_catalog());
    assert!(keyless
        .explain(&intro_query_q_prime(), PlanKind::Lazy)
        .is_err());
    assert!(keyless
        .query(&intro_query_q_prime(), PlanKind::Lazy)
        .is_err());

    // Unsafe with a policy: the fallback path, policy reported.
    let opts = QueryOptions {
        policy: Some(ApproxPolicy::Bounds { eps: 0.01 }),
        ..QueryOptions::default()
    };
    let ex = keyless
        .explain_with_options(&intro_query_q_prime(), &opts)
        .unwrap();
    assert_eq!(ex.path, ExplainPath::Fallback);
    assert!(!ex.tractable);
    assert!(ex.signature.is_none());
    assert_eq!(ex.policy, Some(ApproxPolicy::Bounds { eps: 0.01 }));
    assert!(keyless
        .query_with_options(&intro_query_q_prime(), &opts)
        .is_ok());

    // Columnar backing is reported per scan.
    let col_db = SproutDb::from_catalog(synthetic_catalog(true));
    let ex = col_db.explain(&synthetic_query(), PlanKind::Lazy).unwrap();
    assert!(ex.scan_details.iter().all(|s| s.backing == "columnar"));
    // The pushed-down predicate shows up on its scan.
    let s_scan = ex
        .scan_details
        .iter()
        .find(|s| s.relation == "S")
        .expect("S is scanned");
    assert!(
        s_scan
            .pushdowns
            .iter()
            .any(|p| p.contains("a") && p.contains("1000")),
        "{:?}",
        s_scan.pushdowns
    );
}
