//! # sprout
//!
//! The public facade of the SPROUT reproduction: scalable processing of
//! uncertain tables (Olteanu, Huang, Koch — ICDE 2009).
//!
//! A [`SproutDb`] owns a catalog of tuple-independent probabilistic tables,
//! their key / functional-dependency declarations, and a planner. Queries are
//! conjunctive queries without self-joins extended with the paper's `conf()`
//! aggregation: the answer of [`SproutDb::query`] is the set of distinct
//! answer tuples paired with their exact confidences.
//!
//! ```
//! use sprout::{SproutDb, PlanKind};
//! use pdb_exec::fixtures;
//! use pdb_query::cq::intro_query_q;
//!
//! // The Fig. 1 toy database with the TPC-H-style key declarations.
//! let db = SproutDb::from_catalog(fixtures::fig1_catalog_with_keys());
//! let report = db.query(&intro_query_q(), PlanKind::Lazy).unwrap();
//! assert_eq!(report.confidences.len(), 1);
//! assert!((report.confidences[0].1 - 0.0028).abs() < 1e-9);
//! ```
//!
//! The crate re-exports the building blocks (queries, signatures, plans,
//! the confidence operator) so downstream users can drop to the lower level
//! when they need to.

use std::sync::Arc;

pub use pdb_conf::{ConfError, ConfidenceOperator, ConfidenceResult, Strategy};
pub use pdb_exec::ExecError;
pub use pdb_query::QueryError;
pub use pdb_query::{
    CompareOp, ConjunctiveQuery, FdSet, FunctionalDependency, Predicate, RelationAtom, Signature,
};
pub use pdb_storage::StorageError;
pub use pdb_storage::{
    total_f64_cmp, Catalog, DataType, ProbTable, Schema, Table, Tuple, Value, Variable,
};
pub use sprout_plan::{
    ApproxPolicy, ApproxResult, ConfMethod, Counter, ExecContext, ExplainPath, ExplainScan,
    FallbackPlan, GovernorBuilder, PlanError, PlanExplain, PlanKind, PlanReport, PlanResult,
    Planner, Pool, QueryGovernor, QueryObs, SpanGuard, SpanNode, SproutError, Stage,
    TupleConfidence,
};

/// What [`SproutDb::query_with_options`] should explain, if anything.
///
/// `Plan` callers usually skip execution entirely and call
/// [`SproutDb::explain`] instead; carrying the mode in [`QueryOptions`] lets
/// multiplexing callers (the server) thread one options bundle through
/// admission, execution, and response rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainMode {
    /// Describe the chosen plan without executing.
    Plan,
    /// Execute, and report the plan plus the observed span tree and counters.
    Analyze,
}

/// Per-query execution options, for callers that multiplex many queries over
/// shared resources (notably the `sprout-server` admission scheduler): plan
/// kind, governor, approximation policy, worker pool, and the anytime
/// frontier's memory cap, all in one bundle.
///
/// Because every engine path is bitwise-deterministic at every pool size, two
/// runs with the same `kind`/`policy`/`seed`/`frontier_budget` produce
/// identical answers regardless of `pool` and regardless of whether a
/// governor interrupted neither of them.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Plan family; `None` means [`PlanKind::Lazy`], the SPROUT default.
    pub kind: Option<PlanKind>,
    /// Governor observed at every morsel/chunk/bag checkpoint.
    pub governor: Option<QueryGovernor>,
    /// Fallback policy for unsafe queries; `None` keeps the exact-only
    /// behaviour (unsafe queries error with the blocking attribute pair).
    pub policy: Option<ApproxPolicy>,
    /// Worker pool; `None` reads `SPROUT_THREADS` per plan as before.
    pub pool: Option<Pool>,
    /// Seed of the fallback's refinement tie-breaker.
    pub seed: u64,
    /// Frontier memory cap override: `Some(Some(bytes))` caps, `Some(None)`
    /// removes the default cap, `None` keeps the default.
    pub frontier_budget: Option<Option<usize>>,
    /// Per-query observability collector: when set, every stage tallies its
    /// deterministic counters into it (and records spans when the collector
    /// has tracing enabled). Pure telemetry — answers are bitwise-identical
    /// with or without it.
    pub obs: Option<Arc<QueryObs>>,
    /// Explain mode the caller wants rendered alongside (or instead of) the
    /// result. [`Self::explain`] itself is consulted by wire frontends; the
    /// engine executes identically either way.
    pub explain: Option<ExplainMode>,
}

/// A probabilistic database with the SPROUT confidence-computation engine on
/// top.
#[derive(Debug)]
pub struct SproutDb {
    catalog: Arc<Catalog>,
}

impl SproutDb {
    /// An empty database.
    pub fn new() -> SproutDb {
        SproutDb {
            catalog: Arc::new(Catalog::new()),
        }
    }

    /// Wraps an existing catalog.
    pub fn from_catalog(catalog: Catalog) -> SproutDb {
        SproutDb {
            catalog: Arc::new(catalog),
        }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Registers a tuple-independent table.
    ///
    /// # Errors
    /// Fails if the name is already taken.
    pub fn register_table(&self, name: impl Into<String>, table: ProbTable) -> PlanResult<()> {
        self.catalog
            .register_table(name, table)
            .map_err(PlanError::from)
    }

    /// Declares a key (which the planner turns into functional dependencies).
    ///
    /// # Errors
    /// Fails on unknown tables or columns.
    pub fn declare_key(&self, table: &str, attrs: &[&str]) -> PlanResult<()> {
        self.catalog
            .declare_key(table, attrs)
            .map_err(PlanError::from)
    }

    /// Declares a functional dependency `table: lhs → rhs`.
    ///
    /// # Errors
    /// Fails on unknown tables or columns.
    pub fn declare_fd(&self, table: &str, lhs: &[&str], rhs: &[&str]) -> PlanResult<()> {
        self.catalog
            .declare_fd(table, lhs, rhs)
            .map_err(PlanError::from)
    }

    /// Whether `query` admits exact confidence computation in polynomial time
    /// under the declared dependencies (i.e. has a hierarchical FD-reduct).
    pub fn is_tractable(&self, query: &ConjunctiveQuery) -> bool {
        Planner::new(&self.catalog).is_tractable(query)
    }

    /// The signature the confidence operator uses for `query`.
    ///
    /// # Errors
    /// Fails if the query is intractable.
    pub fn signature(&self, query: &ConjunctiveQuery) -> PlanResult<Signature> {
        Planner::new(&self.catalog).signature(query)
    }

    /// Executes `query` with the given plan kind, returning the full report
    /// (confidences, tuple counts, timings).
    ///
    /// # Errors
    /// Fails if the query is intractable or a referenced table is missing.
    pub fn query(&self, query: &ConjunctiveQuery, kind: PlanKind) -> PlanResult<PlanReport> {
        Planner::new(&self.catalog).execute(query, kind)
    }

    /// Executes `query` with a lazy plan (the default SPROUT choice) and
    /// returns just the distinct tuples and their confidences.
    ///
    /// # Errors
    /// Fails if the query is intractable or a referenced table is missing.
    pub fn confidences(&self, query: &ConjunctiveQuery) -> PlanResult<ConfidenceResult> {
        Ok(self.query(query, PlanKind::Lazy)?.confidences)
    }

    /// Executes `query` under a [`QueryGovernor`]: the whole plan —
    /// relational pipeline, pushed-down aggregations, confidence operator —
    /// observes the governor's cancellation token, wall-clock deadline, and
    /// memory budget at every morsel/chunk/bag checkpoint, and worker panics
    /// are isolated into [`SproutError::WorkerPanic`] instead of aborting
    /// the process. The happy path is bitwise-identical to [`Self::query`].
    ///
    /// # Errors
    /// Returns the governor's interruption ([`SproutError::Cancelled`],
    /// [`SproutError::DeadlineExceeded`], [`SproutError::MemoryBudgetExceeded`],
    /// [`SproutError::WorkerPanic`]) verbatim; any other planning or
    /// execution failure is wrapped as [`SproutError::Failed`].
    pub fn query_governed(
        &self,
        query: &ConjunctiveQuery,
        kind: PlanKind,
        governor: &QueryGovernor,
    ) -> Result<PlanReport, SproutError> {
        Planner::new(&self.catalog)
            .with_governor(governor.clone())
            .execute(query, kind)
            .map_err(|e| match e {
                PlanError::Governed(g) => g,
                other => SproutError::Failed {
                    stage: Stage::Plan,
                    message: other.to_string(),
                },
            })
    }

    /// Executes `query` with an [`ApproxPolicy`] for the unsafe case: if the
    /// query has no safe plan under the declared dependencies, the planner
    /// falls back to read-once factorization of the per-tuple lineage (exact
    /// when it succeeds) and, when the policy is [`ApproxPolicy::Bounds`],
    /// anytime dissociation brackets for the rest — instead of erroring.
    /// Queries with a safe plan are executed exactly as by [`Self::query`],
    /// bitwise-identically.
    ///
    /// # Errors
    /// Fails if a referenced table is missing, or — under
    /// [`ApproxPolicy::Exact`] — if some tuple's lineage is provably not
    /// read-once.
    pub fn query_with_policy(
        &self,
        query: &ConjunctiveQuery,
        kind: PlanKind,
        policy: ApproxPolicy,
    ) -> PlanResult<PlanReport> {
        Planner::new(&self.catalog)
            .with_approx_policy(policy)
            .execute(query, kind)
    }

    /// Executes `query` with a lazy plan, returning per-tuple confidence
    /// *brackets* `[lo, hi]` that are exact (`lo == hi`) whenever a safe plan
    /// or a read-once factorization exists and `eps`-tight dissociation
    /// bounds otherwise.
    ///
    /// # Errors
    /// Fails if a referenced table is missing.
    pub fn confidence_bounds(
        &self,
        query: &ConjunctiveQuery,
        eps: f64,
    ) -> PlanResult<ApproxResult> {
        let report = self.query_with_policy(query, PlanKind::Lazy, ApproxPolicy::Bounds { eps })?;
        Ok(match report.approx {
            Some(brackets) => brackets,
            // A safe plan ran: exact confidences become width-zero brackets.
            None => report
                .confidences
                .into_iter()
                .map(|(tuple, p)| TupleConfidence {
                    tuple,
                    lo: p,
                    hi: p,
                    method: ConfMethod::ReadOnce,
                    rounds: 0,
                })
                .collect(),
        })
    }

    /// Executes `query` under a full [`QueryOptions`] bundle — the entry
    /// point the server's admission scheduler uses, combining
    /// [`Self::query_governed`] and [`Self::query_with_policy`] and adding
    /// the shared-pool thread share.
    ///
    /// # Errors
    /// Returns the full [`PlanError`] taxonomy (so callers can map, e.g.,
    /// [`PlanError::UnsafeQuery`]'s blocking attribute pair and
    /// [`PlanError::Governed`]'s interruption kind to typed wire errors).
    pub fn query_with_options(
        &self,
        query: &ConjunctiveQuery,
        opts: &QueryOptions,
    ) -> PlanResult<PlanReport> {
        let mut planner = Planner::new(&self.catalog).with_approx_seed(opts.seed);
        if let Some(gov) = &opts.governor {
            planner = planner.with_governor(gov.clone());
        }
        if let Some(policy) = opts.policy {
            planner = planner.with_approx_policy(policy);
        }
        if let Some(pool) = &opts.pool {
            planner = planner.with_pool(*pool);
        }
        if let Some(budget) = opts.frontier_budget {
            planner = planner.with_frontier_budget(budget);
        }
        if let Some(obs) = &opts.obs {
            planner = planner.with_obs(obs.clone());
        }
        planner.execute(query, opts.kind.clone().unwrap_or(PlanKind::Lazy))
    }

    /// Explains what [`Self::query`] would do for `query` under the given
    /// plan kind — safe plan vs. fallback, signature, join order, per-scan
    /// backing and pushdowns — without executing anything.
    ///
    /// # Errors
    /// Fails like planning would: unknown relations, or an unsafe query with
    /// no approximation policy.
    pub fn explain(&self, query: &ConjunctiveQuery, kind: PlanKind) -> PlanResult<PlanExplain> {
        Planner::new(&self.catalog).explain(query, kind)
    }

    /// Explains under a full [`QueryOptions`] bundle — the same planner
    /// configuration [`Self::query_with_options`] would execute with, so the
    /// explained decision (notably safe vs. fallback under the bundle's
    /// policy) matches execution exactly.
    ///
    /// # Errors
    /// See [`Self::explain`].
    pub fn explain_with_options(
        &self,
        query: &ConjunctiveQuery,
        opts: &QueryOptions,
    ) -> PlanResult<PlanExplain> {
        let mut planner = Planner::new(&self.catalog);
        if let Some(policy) = opts.policy {
            planner = planner.with_approx_policy(policy);
        }
        planner.explain(query, opts.kind.clone().unwrap_or(PlanKind::Lazy))
    }

    /// Executes `query` ignoring all declared functional dependencies — the
    /// "no FDs" configuration of the Fig. 13 experiment.
    ///
    /// # Errors
    /// Fails if the query is intractable without the dependencies.
    pub fn query_without_fds(
        &self,
        query: &ConjunctiveQuery,
        kind: PlanKind,
    ) -> PlanResult<PlanReport> {
        Planner::without_fds(&self.catalog).execute(query, kind)
    }
}

impl Default for SproutDb {
    fn default() -> Self {
        SproutDb::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_exec::fixtures;
    use pdb_query::cq::{intro_query_q, intro_query_q_prime};
    use pdb_storage::tuple;

    #[test]
    fn facade_runs_the_guiding_query_end_to_end() {
        let db = SproutDb::from_catalog(fixtures::fig1_catalog_with_keys());
        assert!(db.is_tractable(&intro_query_q()));
        let report = db.query(&intro_query_q(), PlanKind::Lazy).unwrap();
        assert_eq!(report.confidences[0].0, tuple!["1995-01-10"]);
        assert!((report.confidences[0].1 - 0.0028).abs() < 1e-9);
        let sig = db.signature(&intro_query_q()).unwrap();
        assert_eq!(sig.to_string(), "(Cust (Ord Item*)*)*");
    }

    #[test]
    fn manual_registration_and_fd_declarations() {
        let db = SproutDb::new();
        db.register_table("Cust", fixtures::fig1_cust()).unwrap();
        db.register_table("Ord", fixtures::fig1_ord()).unwrap();
        db.register_table("Item", fixtures::fig1_item()).unwrap();
        db.declare_key("Cust", &["ckey"]).unwrap();
        db.declare_fd("Ord", &["okey"], &["ckey", "odate"]).unwrap();
        assert!(db.is_tractable(&intro_query_q_prime()));
        let conf = db.confidences(&intro_query_q_prime()).unwrap();
        assert!((conf[0].1 - 0.0028).abs() < 1e-9);
        // Duplicate registration is rejected.
        assert!(db.register_table("Cust", fixtures::fig1_cust()).is_err());
        assert!(db.declare_key("Cust", &["nope"]).is_err());
    }

    #[test]
    fn without_fds_the_hard_query_is_rejected() {
        let db = SproutDb::from_catalog(fixtures::fig1_catalog_with_keys());
        assert!(db
            .query_without_fds(&intro_query_q_prime(), PlanKind::Lazy)
            .is_err());
        // Q itself works without FDs, just with more scans.
        let report = db
            .query_without_fds(&intro_query_q(), PlanKind::Lazy)
            .unwrap();
        assert!((report.confidences[0].1 - 0.0028).abs() < 1e-9);
    }

    #[test]
    fn policy_turns_the_unsafe_rejection_into_brackets() {
        // Without FDs Q' has no safe plan: the plain path errors, the policy
        // path produces brackets containing the true confidence.
        let db = SproutDb::from_catalog(fixtures::fig1_catalog());
        assert!(db.query(&intro_query_q_prime(), PlanKind::Lazy).is_err());
        let report = db
            .query_with_policy(
                &intro_query_q_prime(),
                PlanKind::Lazy,
                ApproxPolicy::Bounds { eps: 1e-9 },
            )
            .unwrap();
        let brackets = report.approx.unwrap();
        assert_eq!(brackets.len(), 1);
        assert!(brackets[0].lo <= 0.0028 + 1e-12 && 0.0028 <= brackets[0].hi + 1e-12);
    }

    #[test]
    fn confidence_bounds_are_width_zero_on_safe_queries() {
        let db = SproutDb::from_catalog(fixtures::fig1_catalog_with_keys());
        let brackets = db.confidence_bounds(&intro_query_q(), 1e-6).unwrap();
        assert_eq!(brackets.len(), 1);
        assert_eq!(brackets[0].lo, brackets[0].hi);
        assert!((brackets[0].value() - 0.0028).abs() < 1e-9);
    }

    #[test]
    fn options_bundle_matches_the_dedicated_entry_points_bitwise() {
        let db = SproutDb::from_catalog(fixtures::fig1_catalog());
        let q = intro_query_q_prime();
        let direct = db
            .query_with_policy(&q, PlanKind::Lazy, ApproxPolicy::Bounds { eps: 1e-9 })
            .unwrap();
        for threads in [1, 4] {
            let opts = QueryOptions {
                policy: Some(ApproxPolicy::Bounds { eps: 1e-9 }),
                pool: Some(Pool::new(threads)),
                ..QueryOptions::default()
            };
            let report = db.query_with_options(&q, &opts).unwrap();
            assert_eq!(report.confidences.len(), direct.confidences.len());
            for (a, b) in report.confidences.iter().zip(&direct.confidences) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "threads={threads}");
            }
        }
        // Unsafe query without a policy surfaces the blocking pair.
        let err = db
            .query_with_options(&q, &QueryOptions::default())
            .unwrap_err();
        assert!(matches!(err, PlanError::UnsafeQuery { .. }));
    }

    #[test]
    fn default_database_is_empty() {
        let db = SproutDb::default();
        assert!(db.catalog().table_names().is_empty());
        assert!(db.query(&intro_query_q(), PlanKind::Lazy).is_err());
    }
}
