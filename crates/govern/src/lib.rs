//! # pdb-govern
//!
//! The query governor: cooperative cancellation, wall-clock deadlines, a
//! memory budget and a structured error taxonomy for every governed query.
//!
//! A [`QueryGovernor`] is a cheap-to-clone handle (one `Arc`) shared between
//! the submitting thread and every worker running the query. Execution code
//! never blocks on it; instead it calls [`ExecContext::checkpoint`] at
//! morsel/chunk/bag boundaries — the same boundaries the morsel-driven
//! pipeline already fans out at — and bubbles the returned [`SproutError`]
//! up through the plan. Between checkpoints a worker runs at full speed, so
//! governance costs one atomic load per morsel, not per row.
//!
//! The happy path is **bitwise-unaffected**: a governed run that completes
//! produces exactly the output of an ungoverned run (values, lineage, row
//! order, confidences), because checkpoints only ever *stop* work, never
//! reorder or reshape it.
//!
//! [`ExecContext`] is the value threaded through the operators: either
//! [`ExecContext::unbounded`] (no governor — every check inlines to a no-op
//! branch on `None`) or [`ExecContext::governed`]. Checkpoints are also the
//! named injection points of the `pdb-fault` harness; with the
//! `fault-inject` feature off the probe is compiled out entirely.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use pdb_obs::{Counter, QueryObs, SpanGuard, SpanNode};

/// The pipeline stage a governance event is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Catalog lookup / table resolution.
    Catalog,
    /// Base-table scan (fused scan–filter–project, row or columnar).
    Scan,
    /// Join (radix-partitioned hash join).
    Join,
    /// Projection.
    Project,
    /// Sort / dedup of the answer relation.
    Sort,
    /// Eager-plan per-node aggregation.
    Aggregate,
    /// Confidence computation (`FlatScan` bag work list).
    Confidence,
    /// Plan-level orchestration (build, dispatch, validation).
    Plan,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Catalog => "catalog",
            Stage::Scan => "scan",
            Stage::Join => "join",
            Stage::Project => "project",
            Stage::Sort => "sort",
            Stage::Aggregate => "aggregate",
            Stage::Confidence => "confidence",
            Stage::Plan => "plan",
        };
        f.write_str(s)
    }
}

/// A governed query's structured failure: every variant names the [`Stage`]
/// it fired in, so callers (and the PR-7 admission scheduler) can tell a
/// query killed while scanning from one killed mid-confidence.
#[derive(Debug, Clone, PartialEq)]
pub enum SproutError {
    /// The query's cancellation token was tripped.
    Cancelled {
        /// Stage that observed the cancellation.
        stage: Stage,
    },
    /// The wall-clock deadline elapsed.
    DeadlineExceeded {
        /// Stage that observed the expiry.
        stage: Stage,
        /// Time the query had been running when the checkpoint fired.
        elapsed: Duration,
        /// The configured deadline.
        deadline: Duration,
    },
    /// An arena or scatter allocation would exceed the memory budget.
    MemoryBudgetExceeded {
        /// Stage that requested the allocation.
        stage: Stage,
        /// Bytes the failing allocation asked for.
        requested: usize,
        /// Bytes accounted against the budget including the request.
        used: usize,
        /// The configured budget in bytes.
        budget: usize,
    },
    /// A worker panicked; the panic was caught at the work-item boundary and
    /// the pool remains reusable.
    WorkerPanic {
        /// Stage whose work item panicked.
        stage: Stage,
        /// Index of the panicking work item (morsel / chunk / bag).
        item: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A non-governance failure (catalog lookup, schema/predicate mismatch,
    /// plan evaluation, confidence), carried with its stage context. The
    /// message is the typed lower-layer error's display form.
    Failed {
        /// Stage the failure belongs to.
        stage: Stage,
        /// Human-readable description of the underlying typed error.
        message: String,
    },
}

impl SproutError {
    /// The stage the error is attributed to.
    pub fn stage(&self) -> Stage {
        match self {
            SproutError::Cancelled { stage }
            | SproutError::DeadlineExceeded { stage, .. }
            | SproutError::MemoryBudgetExceeded { stage, .. }
            | SproutError::WorkerPanic { stage, .. }
            | SproutError::Failed { stage, .. } => *stage,
        }
    }

    /// Whether the error is a governance interruption (cancel / deadline /
    /// budget / panic) as opposed to an ordinary typed failure.
    pub fn is_interruption(&self) -> bool {
        !matches!(self, SproutError::Failed { .. })
    }
}

impl fmt::Display for SproutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SproutError::Cancelled { stage } => write!(f, "query cancelled during {stage}"),
            SproutError::DeadlineExceeded {
                stage,
                elapsed,
                deadline,
            } => write!(
                f,
                "deadline of {deadline:?} exceeded during {stage} (elapsed {elapsed:?})"
            ),
            SproutError::MemoryBudgetExceeded {
                stage,
                requested,
                used,
                budget,
            } => write!(
                f,
                "memory budget of {budget} bytes exceeded during {stage} \
                 (requested {requested}, accounted {used})"
            ),
            SproutError::WorkerPanic {
                stage,
                item,
                message,
            } => write!(
                f,
                "worker panicked during {stage} on work item {item}: {message}"
            ),
            SproutError::Failed { stage, message } => write!(f, "{stage} failed: {message}"),
        }
    }
}

impl std::error::Error for SproutError {}

/// Convenience result alias for governed operations.
pub type SproutResult<T> = Result<T, SproutError>;

/// Disabled sentinel for the cancel-after-checkpoints test aid.
const TRIP_DISABLED: u64 = u64::MAX;

#[derive(Debug)]
struct GovernorInner {
    cancelled: AtomicBool,
    started: Instant,
    deadline: Option<Duration>,
    memory_budget: Option<usize>,
    memory_used: AtomicUsize,
    /// Total checkpoints observed (all workers).
    checkpoints: AtomicU64,
    /// Trip cancellation when the checkpoint counter reaches this value
    /// ([`TRIP_DISABLED`] = off). Deterministic cancellation aid for the
    /// exhaustive index-sweep tests.
    cancel_at: u64,
}

/// Shared cancellation token + deadline + memory budget for one query run.
///
/// Clones share state: cancel any clone and every checkpoint of the run
/// fails with [`SproutError::Cancelled`]. A governor is single-use by
/// convention — build a fresh one per query submission (the deadline clock
/// starts at [`GovernorBuilder::build`]).
#[derive(Debug, Clone)]
pub struct QueryGovernor {
    inner: Arc<GovernorInner>,
}

impl QueryGovernor {
    /// A governor with no deadline and no budget: purely a cancellation
    /// token (plus checkpoint accounting).
    pub fn new() -> Self {
        GovernorBuilder::new().build()
    }

    /// Starts configuring a governor.
    pub fn builder() -> GovernorBuilder {
        GovernorBuilder::new()
    }

    /// Requests cooperative cancellation: every subsequent checkpoint of the
    /// run returns [`SproutError::Cancelled`]. Safe to call from any thread,
    /// any number of times.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Wall-clock time since the governor was built.
    pub fn elapsed(&self) -> Duration {
        self.inner.started.elapsed()
    }

    /// Total checkpoints observed so far, across all workers. After an
    /// uninterrupted run this is the exact number of cancellation
    /// opportunities the run had — the index-sweep tests read it to
    /// enumerate them.
    pub fn checkpoints_seen(&self) -> u64 {
        self.inner.checkpoints.load(Ordering::SeqCst)
    }

    /// Bytes currently accounted against the memory budget.
    pub fn memory_used(&self) -> usize {
        self.inner.memory_used.load(Ordering::Relaxed)
    }

    /// One governance check: counts the checkpoint, then fails on a tripped
    /// token or an expired deadline. This is what [`ExecContext::checkpoint`]
    /// calls; operators go through the context so fault probes stay wired in.
    pub fn check(&self, stage: Stage) -> SproutResult<()> {
        let seen = self.inner.checkpoints.fetch_add(1, Ordering::SeqCst) + 1;
        if seen >= self.inner.cancel_at {
            self.cancel();
        }
        if self.is_cancelled() {
            return Err(SproutError::Cancelled { stage });
        }
        if let Some(deadline) = self.inner.deadline {
            let elapsed = self.inner.started.elapsed();
            if elapsed > deadline {
                return Err(SproutError::DeadlineExceeded {
                    stage,
                    elapsed,
                    deadline,
                });
            }
        }
        Ok(())
    }

    /// Accounts `bytes` against the memory budget, failing the query when
    /// the budget would be exceeded. Called before the arena / scatter
    /// allocations the operators already size exactly.
    pub fn account(&self, stage: Stage, bytes: usize) -> SproutResult<()> {
        let used = self.inner.memory_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        match self.inner.memory_budget {
            Some(budget) if used > budget => Err(SproutError::MemoryBudgetExceeded {
                stage,
                requested: bytes,
                used,
                budget,
            }),
            _ => Ok(()),
        }
    }

    /// Returns `bytes` previously [`account`](Self::account)ed to the budget.
    ///
    /// Most governed allocations live until the query ends and are never
    /// released — the budget is an intra-query high-water mark. The anytime
    /// refinement frontier is the exception: its Shannon-expansion leaves are
    /// freed as refinement replaces or abandons them, and releasing their
    /// accounted bytes keeps long bounds refinements from exhausting the
    /// budget with memory that is no longer resident. Saturates at zero.
    pub fn release(&self, bytes: usize) {
        let mut current = self.inner.memory_used.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(bytes);
            match self.inner.memory_used.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }
}

impl Default for QueryGovernor {
    fn default() -> Self {
        QueryGovernor::new()
    }
}

/// Builder for [`QueryGovernor`]. The deadline clock starts at
/// [`GovernorBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct GovernorBuilder {
    deadline: Option<Duration>,
    memory_budget: Option<usize>,
    cancel_at: Option<u64>,
}

impl GovernorBuilder {
    /// An unrestricted builder.
    pub fn new() -> Self {
        GovernorBuilder::default()
    }

    /// Fails the query once `deadline` of wall-clock time has elapsed.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Fails the query once more than `bytes` of governed allocations are
    /// accounted.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Test aid: deterministically trips cancellation at the `n`-th
    /// checkpoint (1-based), regardless of which worker reaches it. The
    /// exhaustive cancellation sweep drives this over every checkpoint
    /// index of a run.
    pub fn cancel_after_checkpoints(mut self, n: u64) -> Self {
        self.cancel_at = Some(n);
        self
    }

    /// Builds the governor and starts its clock.
    pub fn build(self) -> QueryGovernor {
        QueryGovernor {
            inner: Arc::new(GovernorInner {
                cancelled: AtomicBool::new(false),
                started: Instant::now(),
                deadline: self.deadline,
                memory_budget: self.memory_budget,
                memory_used: AtomicUsize::new(0),
                checkpoints: AtomicU64::new(0),
                cancel_at: self.cancel_at.unwrap_or(TRIP_DISABLED),
            }),
        }
    }
}

/// The execution context threaded through operators: an optional governor
/// plus an optional per-query observability collector.
///
/// [`ExecContext::unbounded`] is the zero-cost default every pre-existing
/// `*_with(pool)` entry point uses — `checkpoint`, `account`, `tally` and
/// `span` reduce to a branch on `None` (plus a fault probe under
/// `fault-inject`).
#[derive(Debug, Clone, Default)]
pub struct ExecContext {
    governor: Option<QueryGovernor>,
    obs: Option<Arc<QueryObs>>,
}

impl ExecContext {
    /// A context with no governor: checks never fail (but fault probes, when
    /// compiled in, still fire — a `panic` fault does not need a governor).
    pub const fn unbounded() -> Self {
        ExecContext {
            governor: None,
            obs: None,
        }
    }

    /// A context governed by `governor`.
    pub fn governed(governor: &QueryGovernor) -> Self {
        ExecContext {
            governor: Some(governor.clone()),
            obs: None,
        }
    }

    /// A context from an optional governor (plan plumbing convenience).
    pub fn from_governor(governor: Option<&QueryGovernor>) -> Self {
        ExecContext {
            governor: governor.cloned(),
            obs: None,
        }
    }

    /// Attaches a per-query observability collector (builder style).
    pub fn with_obs(mut self, obs: Arc<QueryObs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Attaches an optional collector (plan plumbing convenience).
    pub fn with_obs_opt(mut self, obs: Option<&Arc<QueryObs>>) -> Self {
        self.obs = obs.cloned();
        self
    }

    /// The governor, if any.
    pub fn governor(&self) -> Option<&QueryGovernor> {
        self.governor.as_ref()
    }

    /// The observability collector, if any.
    pub fn obs(&self) -> Option<&Arc<QueryObs>> {
        self.obs.as_ref()
    }

    /// Whether a governor is attached.
    pub fn is_governed(&self) -> bool {
        self.governor.is_some()
    }

    /// Adds `n` to a deterministic counter (no-op without a collector).
    ///
    /// Call sites must increment by amounts that are functions of the query,
    /// the data, and the backing only — never of the thread count or morsel
    /// schedule — so totals stay bitwise-identical at every pool size.
    #[inline]
    pub fn tally(&self, counter: Counter, n: u64) {
        if let Some(obs) = &self.obs {
            obs.add(counter, n);
        }
    }

    /// Opens a tracing span at `site` (a no-op guard when no collector is
    /// attached or tracing is disabled). Spans must only be opened from
    /// sequential coordinating code, never inside parallel worker loops.
    pub fn span(&self, site: &'static str) -> SpanGuard {
        match &self.obs {
            Some(obs) => obs.span(site),
            None => SpanGuard::noop(),
        }
    }

    /// Opens a tracing span at `site` with a free-form qualifier.
    pub fn span_with(&self, site: &'static str, detail: impl Into<String>) -> SpanGuard {
        match &self.obs {
            Some(obs) => obs.span_with(site, detail),
            None => SpanGuard::noop(),
        }
    }

    /// One governed checkpoint at injection point `(site, index)` in
    /// `stage`: fires a matching armed fault first (compiled out without
    /// `fault-inject`), then the governor's cancellation/deadline check.
    ///
    /// `site` names the boundary class (`"scan.morsel"`, `"join.probe"`,
    /// `"scan.chunk"`, `"conf.bag"`, ...) and `index` the item within it.
    #[inline]
    pub fn checkpoint(&self, stage: Stage, site: &str, index: usize) -> SproutResult<()> {
        if let Some(action) = pdb_fault::probe(site, index) {
            self.apply_fault(stage, site, index, action)?;
        }
        match &self.governor {
            None => Ok(()),
            Some(g) => g.check(stage),
        }
    }

    /// Accounts `bytes` of arena/scatter allocation in `stage` against the
    /// memory budget (no-op when ungoverned or unbudgeted).
    #[inline]
    pub fn account(&self, stage: Stage, bytes: usize) -> SproutResult<()> {
        match &self.governor {
            None => Ok(()),
            Some(g) => g.account(stage, bytes),
        }
    }

    /// Returns `bytes` of previously accounted allocation to the budget
    /// (no-op when ungoverned). See [`QueryGovernor::release`].
    #[inline]
    pub fn release(&self, bytes: usize) {
        if let Some(g) = &self.governor {
            g.release(bytes);
        }
    }

    /// Applies a fired fault action at `(site, index)`.
    ///
    /// Kept out of line so the inlined happy path stays small; unused (and
    /// unreachable) when `fault-inject` is off.
    #[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
    #[cold]
    fn apply_fault(
        &self,
        stage: Stage,
        site: &str,
        index: usize,
        action: pdb_fault::FaultAction,
    ) -> SproutResult<()> {
        match action {
            pdb_fault::FaultAction::Panic => {
                panic!("injected fault: panic at {site}[{index}]")
            }
            pdb_fault::FaultAction::Cancel => {
                if let Some(g) = &self.governor {
                    g.cancel();
                }
                Err(SproutError::Cancelled { stage })
            }
            pdb_fault::FaultAction::Budget => {
                // Simulated exhaustion: report whatever is accounted so far.
                let (used, budget) = match &self.governor {
                    Some(g) => (g.memory_used(), 0),
                    None => (0, 0),
                };
                Err(SproutError::MemoryBudgetExceeded {
                    stage,
                    requested: 0,
                    used,
                    budget,
                })
            }
            pdb_fault::FaultAction::Slow(ms) => {
                // Simulated slow worker; the governor check that follows the
                // probe then observes any expired deadline.
                std::thread::sleep(Duration::from_millis(ms));
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_context_never_fails() {
        let ctx = ExecContext::unbounded();
        assert!(!ctx.is_governed());
        for i in 0..1000 {
            assert!(ctx.checkpoint(Stage::Scan, "t.site", i).is_ok());
            assert!(ctx.account(Stage::Scan, 1 << 20).is_ok());
        }
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let gov = QueryGovernor::new();
        let ctx = ExecContext::governed(&gov);
        assert!(ctx.checkpoint(Stage::Join, "t.site", 0).is_ok());
        let clone = gov.clone();
        clone.cancel();
        assert!(gov.is_cancelled());
        let err = ctx.checkpoint(Stage::Join, "t.site", 1).unwrap_err();
        assert_eq!(err, SproutError::Cancelled { stage: Stage::Join });
        assert_eq!(err.stage(), Stage::Join);
        assert!(err.is_interruption());
    }

    #[test]
    fn deadline_fires_after_expiry() {
        let gov = QueryGovernor::builder()
            .deadline(Duration::from_millis(5))
            .build();
        let ctx = ExecContext::governed(&gov);
        assert!(ctx.checkpoint(Stage::Scan, "t.site", 0).is_ok());
        std::thread::sleep(Duration::from_millis(10));
        match ctx.checkpoint(Stage::Scan, "t.site", 1) {
            Err(SproutError::DeadlineExceeded {
                stage, deadline, ..
            }) => {
                assert_eq!(stage, Stage::Scan);
                assert_eq!(deadline, Duration::from_millis(5));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn memory_budget_fails_the_overflowing_allocation() {
        let gov = QueryGovernor::builder().memory_budget(1000).build();
        let ctx = ExecContext::governed(&gov);
        assert!(ctx.account(Stage::Scan, 600).is_ok());
        assert_eq!(gov.memory_used(), 600);
        match ctx.account(Stage::Join, 600) {
            Err(SproutError::MemoryBudgetExceeded {
                stage,
                requested,
                used,
                budget,
            }) => {
                assert_eq!(stage, Stage::Join);
                assert_eq!(requested, 600);
                assert_eq!(used, 1200);
                assert_eq!(budget, 1000);
            }
            other => panic!("expected MemoryBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn release_returns_accounted_bytes_and_saturates() {
        let gov = QueryGovernor::builder().memory_budget(1000).build();
        let ctx = ExecContext::governed(&gov);
        assert!(ctx.account(Stage::Confidence, 800).is_ok());
        ctx.release(300);
        assert_eq!(gov.memory_used(), 500);
        // The freed headroom is usable again.
        assert!(ctx.account(Stage::Confidence, 400).is_ok());
        assert_eq!(gov.memory_used(), 900);
        // Saturating: releasing more than is accounted clamps to zero.
        gov.release(5000);
        assert_eq!(gov.memory_used(), 0);
        // Ungoverned contexts ignore release.
        ExecContext::unbounded().release(1 << 30);
    }

    #[test]
    fn cancel_after_checkpoints_trips_exactly_at_n() {
        let gov = QueryGovernor::builder().cancel_after_checkpoints(3).build();
        let ctx = ExecContext::governed(&gov);
        assert!(ctx.checkpoint(Stage::Scan, "t.site", 0).is_ok());
        assert!(ctx.checkpoint(Stage::Scan, "t.site", 1).is_ok());
        assert!(matches!(
            ctx.checkpoint(Stage::Scan, "t.site", 2),
            Err(SproutError::Cancelled { .. })
        ));
        assert_eq!(gov.checkpoints_seen(), 3);
    }

    #[test]
    fn checkpoints_are_counted_for_the_sweep() {
        let gov = QueryGovernor::new();
        let ctx = ExecContext::governed(&gov);
        for i in 0..17 {
            ctx.checkpoint(Stage::Confidence, "t.site", i).unwrap();
        }
        assert_eq!(gov.checkpoints_seen(), 17);
    }

    #[test]
    fn tally_and_span_route_to_the_attached_collector() {
        let obs = QueryObs::with_tracing();
        let ctx = ExecContext::unbounded().with_obs(Arc::clone(&obs));
        {
            let _s = ctx.span_with("scan", "R");
            ctx.tally(Counter::RowsScanned, 42);
        }
        assert_eq!(obs.get(Counter::RowsScanned), 42);
        let tree = obs.span_tree();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].site, "scan");
        assert_eq!(tree[0].counters, vec![("rows_scanned", 42)]);
        // Without a collector both are no-ops.
        let bare = ExecContext::unbounded();
        bare.tally(Counter::RowsScanned, 7);
        drop(bare.span("scan"));
        assert!(bare.obs().is_none());
    }

    #[test]
    fn errors_display_their_stage() {
        let e = SproutError::WorkerPanic {
            stage: Stage::Confidence,
            item: 7,
            message: "boom".into(),
        };
        let s = e.to_string();
        assert!(
            s.contains("confidence") && s.contains('7') && s.contains("boom"),
            "{s}"
        );
        assert!(SproutError::Cancelled { stage: Stage::Scan }
            .to_string()
            .contains("scan"));
        let f = SproutError::Failed {
            stage: Stage::Catalog,
            message: "unknown table: Ord".into(),
        };
        assert!(!f.is_interruption());
        assert!(f.to_string().contains("catalog"));
    }
}
