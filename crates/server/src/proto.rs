//! The wire protocol: JSON bodies ↔ engine types.
//!
//! Three request shapes:
//!
//! * `POST /tables` — register a tuple-independent table:
//!   `{"name", "schema": [["col","int"], …], "keys": [["a"], …],
//!     "fds": [{"lhs": […], "rhs": […]}, …],
//!     "rows": [{"values": […], "var": 1, "prob": 0.5}, …]}`
//! * `POST /query` — run a conjunctive query:
//!   `{"query": {"relations": [{"name", "attrs"}, …], "head": […],
//!     "predicates": [{"relation", "attribute", "op", "value"| "values"}]},
//!     "kind", "policy", "deadline_ms", "memory_budget", "seed",
//!     "frontier_budget"}`
//! * `GET /health` — load snapshot.
//!
//! Values map to JSON as themselves, except dates, which travel as
//! `{"date": days_since_epoch}` so the integer/date distinction survives the
//! round trip. Floats are rendered with shortest-round-trip precision, so a
//! confidence read off the wire is bitwise the confidence the engine
//! computed.

use pdb_obs::{Counter, QueryObs, SpanNode};
use sprout::{
    ApproxPolicy, CompareOp, ConfMethod, ConjunctiveQuery, DataType, ExplainMode, PlanExplain,
    PlanKind, PlanReport, Predicate, ProbTable, RelationAtom, Schema, Tuple, Value, Variable,
};

use crate::error::WireError;
use crate::json::Json;

fn bad(message: impl Into<String>) -> WireError {
    WireError::new(400, "BAD_REQUEST", message)
}

/// A parsed `POST /tables` body, ready to apply to a catalog.
#[derive(Debug)]
pub struct TableSpec {
    /// Table name.
    pub name: String,
    /// The table itself (schema + rows + variables + probabilities).
    pub table: ProbTable,
    /// Keys to declare after registration.
    pub keys: Vec<Vec<String>>,
    /// Functional dependencies `lhs → rhs` to declare after registration.
    pub fds: Vec<(Vec<String>, Vec<String>)>,
}

/// A parsed `POST /query` body.
#[derive(Debug)]
pub struct QueryRequest {
    /// The validated conjunctive query.
    pub query: ConjunctiveQuery,
    /// Plan family (`None` = lazy).
    pub kind: Option<PlanKind>,
    /// Approximation policy for unsafe queries.
    pub policy: Option<ApproxPolicy>,
    /// Per-request deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Per-request memory budget in bytes.
    pub memory_budget: Option<usize>,
    /// Seed for the fallback's refinement tie-breaker.
    pub seed: u64,
    /// Frontier cap override: absent = default, `null` = uncapped,
    /// integer = cap in bytes.
    pub frontier_budget: Option<Option<usize>>,
    /// `"plan"` describes the chosen plan without executing; `"analyze"`
    /// executes with tracing on and appends the trailer line.
    pub explain: Option<ExplainMode>,
}

/// Parses a `POST /tables` body.
///
/// # Errors
/// `400 BAD_REQUEST` on any shape violation; value/schema mismatches surface
/// later as typed storage errors when the spec is applied.
pub fn parse_table(body: &Json) -> Result<TableSpec, WireError> {
    let name = body
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("`name` must be a string"))?
        .to_string();
    let schema_json = body
        .get("schema")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("`schema` must be an array of [column, type] pairs"))?;
    let mut pairs = Vec::with_capacity(schema_json.len());
    for entry in schema_json {
        let pair = entry
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| bad("each `schema` entry must be a [column, type] pair"))?;
        let col = pair[0]
            .as_str()
            .ok_or_else(|| bad("schema column name must be a string"))?;
        let ty = match pair[1].as_str() {
            Some("int") => DataType::Int,
            Some("float") => DataType::Float,
            Some("str") => DataType::Str,
            Some("date") => DataType::Date,
            Some("bool") => DataType::Bool,
            _ => {
                return Err(bad(format!(
                    "unknown column type {} (expected int/float/str/date/bool)",
                    pair[1].render()
                )))
            }
        };
        pairs.push((col, ty));
    }
    let schema = Schema::from_pairs(&pairs).map_err(|e| crate::error::from_storage_error(&e))?;

    let mut table = ProbTable::new(schema.clone());
    for (i, row) in list(body, "rows")?.iter().enumerate() {
        let values = row
            .get("values")
            .and_then(Json::as_array)
            .ok_or_else(|| bad(format!("row {i}: `values` must be an array")))?;
        let mut tuple = Vec::with_capacity(values.len());
        for (j, v) in values.iter().enumerate() {
            let mut value =
                json_to_value(v).map_err(|e| bad(format!("row {i}, column {j}: {e}")))?;
            // An integer arriving in a date column is days since epoch.
            if let (Some(col), Value::Int(n)) = (schema.columns().get(j), &value) {
                if col.data_type == DataType::Date {
                    let days = i32::try_from(*n).map_err(|_| {
                        bad(format!(
                            "row {i}, column {j}: date value {n} is out of the representable range"
                        ))
                    })?;
                    value = Value::Date(days);
                }
            }
            tuple.push(value);
        }
        let var = row
            .get("var")
            .and_then(Json::as_i64)
            .filter(|v| *v >= 0)
            .ok_or_else(|| bad(format!("row {i}: `var` must be a non-negative integer")))?;
        let prob = row
            .get("prob")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad(format!("row {i}: `prob` must be a number")))?;
        table
            .insert(Tuple::new(tuple), Variable(var as u64), prob)
            .map_err(|e| crate::error::from_storage_error(&e))?;
    }

    let mut keys = Vec::new();
    for key in list(body, "keys")? {
        keys.push(string_list(key, "each key")?);
    }
    let mut fds = Vec::new();
    for fd in list(body, "fds")? {
        let lhs = fd
            .get("lhs")
            .ok_or_else(|| bad("each fd needs `lhs` and `rhs` arrays"))?;
        let rhs = fd
            .get("rhs")
            .ok_or_else(|| bad("each fd needs `lhs` and `rhs` arrays"))?;
        fds.push((string_list(lhs, "fd `lhs`")?, string_list(rhs, "fd `rhs`")?));
    }

    // Validate key/FD attributes against the schema *before* the spec is
    // applied: registration must be atomic, so every declare that would
    // fail after `register_table` has to be rejected here, while no state
    // has been committed yet.
    for attr in keys.iter().flatten().chain(
        fds.iter()
            .flat_map(|(lhs, rhs)| lhs.iter().chain(rhs.iter())),
    ) {
        if !schema.contains(attr) {
            return Err(crate::error::from_storage_error(
                &sprout::StorageError::UnknownColumn(attr.clone()),
            ));
        }
    }

    Ok(TableSpec {
        name,
        table,
        keys,
        fds,
    })
}

/// Parses a `POST /query` body. Query validation (self-joins, unknown
/// attributes, …) happens here via [`ConjunctiveQuery::new`] and surfaces as
/// typed 4xx errors.
///
/// # Errors
/// `400 BAD_REQUEST` on shape violations; the [`sprout::QueryError`] mapping
/// for semantic ones.
pub fn parse_query(body: &Json) -> Result<QueryRequest, WireError> {
    let query_json = body
        .get("query")
        .ok_or_else(|| bad("`query` object is required"))?;

    let mut relations = Vec::new();
    for (i, rel) in list(query_json, "relations")?.iter().enumerate() {
        let name = rel
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad(format!("relation {i}: `name` must be a string")))?;
        let attrs = string_list(
            rel.get("attrs")
                .ok_or_else(|| bad(format!("relation {i}: `attrs` must be an array")))?,
            "`attrs`",
        )?;
        let attrs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        relations.push(RelationAtom::new(name, &attrs));
    }

    let head = match query_json.get("head") {
        None => Vec::new(),
        Some(h) => string_list(h, "`head`")?,
    };

    let mut predicates = Vec::new();
    if let Some(preds) = query_json.get("predicates") {
        for (i, p) in preds
            .as_array()
            .ok_or_else(|| bad("`predicates` must be an array"))?
            .iter()
            .enumerate()
        {
            predicates.push(parse_predicate(p, i)?);
        }
    }

    let query = ConjunctiveQuery::new(relations, head, predicates)
        .map_err(|e| crate::error::from_query_error(&e))?;

    let kind = match body.get("kind") {
        None => None,
        Some(k) => Some(parse_kind(k)?),
    };
    let policy = match body.get("policy") {
        None => None,
        Some(p) => Some(parse_policy(p)?),
    };
    let deadline_ms = opt_u64(body, "deadline_ms")?;
    let memory_budget = opt_u64(body, "memory_budget")?.map(|v| v as usize);
    let seed = opt_u64(body, "seed")?.unwrap_or(0);
    // Tri-state: absent = default cap, null = uncapped, n = cap at n bytes.
    let frontier_budget = match body.get("frontier_budget") {
        None => None,
        Some(Json::Null) => Some(None),
        Some(v) => match v.as_i64().filter(|n| *n >= 0) {
            Some(n) => Some(Some(n as usize)),
            None => {
                return Err(bad(
                    "`frontier_budget` must be null or a non-negative integer",
                ))
            }
        },
    };

    let explain = match body.get("explain") {
        None | Some(Json::Null) => None,
        Some(e) => match e.as_str() {
            Some("plan") => Some(ExplainMode::Plan),
            Some("analyze") => Some(ExplainMode::Analyze),
            _ => return Err(bad("`explain` must be \"plan\" or \"analyze\"")),
        },
    };

    Ok(QueryRequest {
        query,
        kind,
        policy,
        deadline_ms,
        memory_budget,
        seed,
        frontier_budget,
        explain,
    })
}

fn parse_predicate(p: &Json, i: usize) -> Result<Predicate, WireError> {
    let relation = p
        .get("relation")
        .and_then(Json::as_str)
        .ok_or_else(|| bad(format!("predicate {i}: `relation` must be a string")))?;
    let attribute = p
        .get("attribute")
        .and_then(Json::as_str)
        .ok_or_else(|| bad(format!("predicate {i}: `attribute` must be a string")))?;
    let op = p
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| bad(format!("predicate {i}: `op` must be a string")))?;
    if op == "in" {
        let values = p
            .get("values")
            .and_then(Json::as_array)
            .ok_or_else(|| bad(format!("predicate {i}: `in` needs a `values` array")))?;
        let mut list = Vec::with_capacity(values.len());
        for v in values {
            list.push(json_to_value(v).map_err(|e| bad(format!("predicate {i}: {e}")))?);
        }
        return Ok(Predicate::is_in(relation, attribute, list));
    }
    let op = match op {
        "=" | "==" => CompareOp::Eq,
        "!=" | "<>" => CompareOp::Ne,
        "<" => CompareOp::Lt,
        "<=" => CompareOp::Le,
        ">" => CompareOp::Gt,
        ">=" => CompareOp::Ge,
        other => {
            return Err(bad(format!(
                "predicate {i}: unknown op `{other}` (expected =, !=, <, <=, >, >=, in)"
            )))
        }
    };
    let value = p
        .get("value")
        .ok_or_else(|| bad(format!("predicate {i}: `value` is required")))?;
    let value = json_to_value(value).map_err(|e| bad(format!("predicate {i}: {e}")))?;
    Ok(Predicate::new(relation, attribute, op, value))
}

fn parse_kind(k: &Json) -> Result<PlanKind, WireError> {
    if let Some(s) = k.as_str() {
        return match s {
            "lazy" => Ok(PlanKind::Lazy),
            "eager" => Ok(PlanKind::Eager),
            "mystiq" => Ok(PlanKind::Mystiq),
            "mystiq-log" => Ok(PlanKind::MystiqLogSpace),
            other => Err(bad(format!(
                "unknown plan kind `{other}` (expected lazy/eager/mystiq/mystiq-log or {{\"hybrid\": […]}})"
            ))),
        };
    }
    if let Some(pushed) = k.get("hybrid") {
        return Ok(PlanKind::Hybrid(string_list(pushed, "`hybrid`")?));
    }
    Err(bad("`kind` must be a string or {\"hybrid\": […]}"))
}

fn parse_policy(p: &Json) -> Result<ApproxPolicy, WireError> {
    if p.as_str() == Some("exact") {
        return Ok(ApproxPolicy::Exact);
    }
    if let Some(bounds) = p.get("bounds") {
        let eps = bounds
            .get("eps")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad("`policy.bounds.eps` must be a number"))?;
        if eps.is_nan() || eps < 0.0 {
            return Err(bad("`policy.bounds.eps` must be non-negative"));
        }
        return Ok(ApproxPolicy::Bounds { eps });
    }
    Err(bad(
        "`policy` must be \"exact\" or {\"bounds\": {\"eps\": …}}",
    ))
}

/// Engine value → wire JSON. Dates travel as `{"date": days}` so they stay
/// distinguishable from plain integers.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::Float(*f),
        Value::Str(s) => Json::Str(s.to_string()),
        Value::Date(d) => Json::Object(vec![("date".to_string(), Json::Int(*d as i64))]),
        Value::Bool(b) => Json::Bool(*b),
    }
}

/// Wire JSON → engine value (inverse of [`value_to_json`]).
///
/// # Errors
/// Describes the offending shape (arrays and non-date objects are not
/// values).
pub fn json_to_value(j: &Json) -> Result<Value, String> {
    match j {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Float(f) => Ok(Value::Float(*f)),
        Json::Str(s) => Ok(Value::str(s)),
        Json::Object(_) => match j.get("date").and_then(Json::as_i64) {
            Some(d) => i32::try_from(d)
                .map(Value::Date)
                .map_err(|_| format!("date value {d} is out of the representable range")),
            None => Err(format!("{} is not a value", j.render())),
        },
        Json::Array(_) => Err(format!("{} is not a value", j.render())),
    }
}

/// Renders the answer stream for a report: one header line, then one line
/// per answer tuple, ranked by confidence descending (ties keep the
/// engine's deterministic tuple order). Every line includes its rank so
/// clients can detect truncation.
pub fn answer_lines(report: &PlanReport) -> Vec<String> {
    let mut header = vec![
        (
            "answers".to_string(),
            Json::Int(report.confidences.len() as i64),
        ),
        ("kind".to_string(), Json::Str(report.kind.to_string())),
    ];
    let max_width = report
        .approx
        .as_ref()
        .map(|brackets| brackets.iter().map(|b| b.width()).fold(0.0f64, f64::max));
    header.push((
        "exact".to_string(),
        Json::Bool(max_width.is_none_or(|w| w == 0.0)),
    ));
    if let Some(w) = max_width {
        header.push(("max_width".to_string(), Json::Float(w)));
    }
    let mut lines = vec![Json::Object(header).render()];

    match &report.approx {
        None => {
            let mut ranked: Vec<&(Tuple, f64)> = report.confidences.iter().collect();
            ranked.sort_by(|a, b| sprout::total_f64_cmp(b.1, a.1));
            for (rank, (tuple, p)) in ranked.into_iter().enumerate() {
                lines.push(
                    Json::Object(vec![
                        ("rank".to_string(), Json::Int(rank as i64)),
                        (
                            "tuple".to_string(),
                            Json::Array(tuple.values().iter().map(value_to_json).collect()),
                        ),
                        ("confidence".to_string(), Json::Float(*p)),
                    ])
                    .render(),
                );
            }
        }
        Some(brackets) => {
            let mut ranked: Vec<&sprout::TupleConfidence> = brackets.iter().collect();
            ranked.sort_by(|a, b| sprout::total_f64_cmp(b.value(), a.value()));
            for (rank, b) in ranked.into_iter().enumerate() {
                lines.push(
                    Json::Object(vec![
                        ("rank".to_string(), Json::Int(rank as i64)),
                        (
                            "tuple".to_string(),
                            Json::Array(b.tuple.values().iter().map(value_to_json).collect()),
                        ),
                        ("confidence".to_string(), Json::Float(b.value())),
                        ("lo".to_string(), Json::Float(b.lo)),
                        ("hi".to_string(), Json::Float(b.hi)),
                        (
                            "method".to_string(),
                            Json::Str(
                                match b.method {
                                    ConfMethod::ReadOnce => "read-once",
                                    ConfMethod::Dissociation => "dissociation",
                                }
                                .to_string(),
                            ),
                        ),
                        ("rounds".to_string(), Json::Int(b.rounds as i64)),
                    ])
                    .render(),
                );
            }
        }
    }
    lines
}

/// Renders a [`PlanExplain`] as the `"explain": "plan"` response document:
/// the chosen path, tractability, signature, join order, per-scan backing
/// and pushdowns, and the policy in force — all as plain data.
pub fn explain_json(ex: &PlanExplain) -> Json {
    let mut fields = vec![
        ("kind".to_string(), Json::Str(ex.kind.to_string())),
        ("path".to_string(), Json::str(ex.path.name())),
        ("tractable".to_string(), Json::Bool(ex.tractable)),
        ("uses_fds".to_string(), Json::Bool(ex.uses_fds)),
    ];
    match &ex.signature {
        Some(sig) => fields.push(("signature".to_string(), Json::str(sig))),
        None => fields.push(("signature".to_string(), Json::Null)),
    }
    fields.push((
        "scans".to_string(),
        ex.scans.map_or(Json::Null, |n| Json::Int(n as i64)),
    ));
    fields.push((
        "policy".to_string(),
        match ex.policy {
            None => Json::Null,
            Some(ApproxPolicy::Exact) => Json::str("exact"),
            Some(ApproxPolicy::Bounds { eps }) => Json::Object(vec![(
                "bounds".to_string(),
                Json::Object(vec![("eps".to_string(), Json::Float(eps))]),
            )]),
        },
    ));
    fields.push((
        "join_order".to_string(),
        Json::Array(ex.join_order.iter().map(Json::str).collect()),
    ));
    fields.push((
        "scan_details".to_string(),
        Json::Array(
            ex.scan_details
                .iter()
                .map(|s| {
                    Json::Object(vec![
                        ("relation".to_string(), Json::str(&s.relation)),
                        ("backing".to_string(), Json::str(s.backing)),
                        ("rows".to_string(), Json::Int(s.rows as i64)),
                        (
                            "pushdowns".to_string(),
                            Json::Array(s.pushdowns.iter().map(Json::str).collect()),
                        ),
                    ])
                })
                .collect(),
        ),
    ));
    Json::Object(fields)
}

/// Renders one span of the executed trace, children nested.
fn span_json(node: &SpanNode) -> Json {
    Json::Object(vec![
        ("site".to_string(), Json::str(node.site)),
        ("detail".to_string(), Json::str(&node.detail)),
        ("start_us".to_string(), Json::Int(node.start_us as i64)),
        ("elapsed_us".to_string(), Json::Int(node.elapsed_us as i64)),
        (
            "counters".to_string(),
            Json::Object(
                node.counters
                    .iter()
                    .map(|(name, v)| ((*name).to_string(), Json::Int(*v as i64)))
                    .collect(),
            ),
        ),
        (
            "children".to_string(),
            Json::Array(node.children.iter().map(span_json).collect()),
        ),
    ])
}

/// The EXPLAIN ANALYZE trailer: one NDJSON object appended after the answer
/// lines, keyed `"analyze"` so clients can tell it from an answer. Carries
/// the explained plan, the full deterministic counter set (zeros included,
/// so the schema is stable), and the executed span tree. Span durations are
/// wall-clock and outside the determinism contract; the counters are not.
pub fn analyze_trailer(explain: Option<&PlanExplain>, obs: &QueryObs) -> Json {
    let values = obs.counter_values();
    let counters = Counter::ALL
        .iter()
        .map(|&c| (c.name().to_string(), Json::Int(values[c as usize] as i64)))
        .collect();
    Json::Object(vec![(
        "analyze".to_string(),
        Json::Object(vec![
            ("plan".to_string(), explain.map_or(Json::Null, explain_json)),
            ("counters".to_string(), Json::Object(counters)),
            (
                "spans".to_string(),
                Json::Array(obs.span_tree().iter().map(span_json).collect()),
            ),
        ]),
    )])
}

fn list<'a>(body: &'a Json, field: &str) -> Result<&'a [Json], WireError> {
    match body.get(field) {
        None => Ok(&[]),
        Some(v) => v
            .as_array()
            .ok_or_else(|| bad(format!("`{field}` must be an array"))),
    }
}

fn string_list(j: &Json, what: &str) -> Result<Vec<String>, WireError> {
    j.as_array()
        .ok_or_else(|| bad(format!("{what} must be an array of strings")))?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| bad(format!("{what} must contain only strings")))
        })
        .collect()
}

fn opt_u64(body: &Json, field: &str) -> Result<Option<u64>, WireError> {
    match body.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => match v.as_i64().filter(|n| *n >= 0) {
            Some(n) => Ok(Some(n as u64)),
            None => Err(bad(format!("`{field}` must be a non-negative integer"))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_table_spec_with_keys_and_fds() {
        let body = Json::parse(
            br#"{"name":"Ord","schema":[["okey","int"],["odate","date"]],
                 "keys":[["okey"]],
                 "fds":[{"lhs":["okey"],"rhs":["odate"]}],
                 "rows":[{"values":[1, 9140],"var":7,"prob":0.4}]}"#,
        )
        .unwrap();
        let spec = parse_table(&body).unwrap();
        assert_eq!(spec.name, "Ord");
        assert_eq!(spec.table.len(), 1);
        // The int in the date column was coerced.
        assert_eq!(spec.table.rows()[0].value(1), &Value::Date(9140));
        assert_eq!(spec.table.triple(0).1, Variable(7));
        assert_eq!(spec.keys, vec![vec!["okey".to_string()]]);
        assert_eq!(
            spec.fds,
            vec![(vec!["okey".to_string()], vec!["odate".to_string()])]
        );
    }

    #[test]
    fn table_shape_violations_are_bad_requests() {
        for raw in [
            r#"{"schema":[]}"#,
            r#"{"name":"T","schema":[["a"]]}"#,
            r#"{"name":"T","schema":[["a","decimal"]]}"#,
            r#"{"name":"T","schema":[["a","int"]],"rows":[{"values":[1],"prob":0.5}]}"#,
            r#"{"name":"T","schema":[["a","int"]],"rows":[{"values":[1],"var":-3,"prob":0.5}]}"#,
            r#"{"name":"T","schema":[["a","int"]],"rows":[{"values":[[1]],"var":0,"prob":0.5}]}"#,
        ] {
            let err = parse_table(&Json::parse(raw.as_bytes()).unwrap()).unwrap_err();
            assert_eq!(err.status, 400, "{raw}");
        }
        // A bad probability is a typed storage error, not a generic 400.
        let raw =
            r#"{"name":"T","schema":[["a","int"]],"rows":[{"values":[1],"var":0,"prob":1.5}]}"#;
        let err = parse_table(&Json::parse(raw.as_bytes()).unwrap()).unwrap_err();
        assert_eq!(err.code, "INVALID_PROBABILITY");
    }

    #[test]
    fn key_and_fd_columns_are_validated_before_the_spec_is_applied() {
        // Dangling key/FD attributes fail at parse time, so a registration
        // either commits the table *with* its metadata or commits nothing.
        for raw in [
            r#"{"name":"T","schema":[["a","int"]],"keys":[["nope"]]}"#,
            r#"{"name":"T","schema":[["a","int"]],"fds":[{"lhs":["a"],"rhs":["nope"]}]}"#,
            r#"{"name":"T","schema":[["a","int"]],"fds":[{"lhs":["nope"],"rhs":["a"]}]}"#,
        ] {
            let err = parse_table(&Json::parse(raw.as_bytes()).unwrap()).unwrap_err();
            assert_eq!((err.status, err.code), (400, "UNKNOWN_COLUMN"), "{raw}");
        }
    }

    #[test]
    fn out_of_range_dates_are_rejected_not_wrapped() {
        // 2^31 would silently wrap through `as i32`.
        let err = json_to_value(&Json::parse(br#"{"date":2147483648}"#).unwrap()).unwrap_err();
        assert!(err.contains("out of the representable range"), "{err}");
        let raw = r#"{"name":"T","schema":[["d","date"]],
                      "rows":[{"values":[2147483648],"var":0,"prob":0.5}]}"#;
        let err = parse_table(&Json::parse(raw.as_bytes()).unwrap()).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("out of the representable range"));
        // The extremes of the representable range still pass.
        assert_eq!(
            json_to_value(&Json::parse(br#"{"date":-2147483648}"#).unwrap()).unwrap(),
            Value::Date(i32::MIN)
        );
    }

    #[test]
    fn parses_a_query_request_with_all_options() {
        let body = Json::parse(
            br#"{"query":{"relations":[{"name":"Cust","attrs":["ckey"]},
                                        {"name":"Ord","attrs":["ckey","odate"]}],
                          "head":["odate"],
                          "predicates":[{"relation":"Cust","attribute":"ckey","op":"<","value":3},
                                        {"relation":"Ord","attribute":"odate","op":"in",
                                         "values":[{"date":9140},{"date":9141}]}]},
                 "kind":{"hybrid":["Cust"]},
                 "policy":{"bounds":{"eps":0.01}},
                 "deadline_ms":250,"memory_budget":1048576,"seed":42,
                 "frontier_budget":65536}"#,
        )
        .unwrap();
        let req = parse_query(&body).unwrap();
        assert_eq!(req.query.relations.len(), 2);
        assert_eq!(req.query.head, vec!["odate"]);
        assert_eq!(req.query.predicates.len(), 2);
        assert_eq!(req.query.predicates[1].constant, Value::Date(9140));
        assert_eq!(req.kind, Some(PlanKind::Hybrid(vec!["Cust".to_string()])));
        assert_eq!(req.policy, Some(ApproxPolicy::Bounds { eps: 0.01 }));
        assert_eq!(req.deadline_ms, Some(250));
        assert_eq!(req.memory_budget, Some(1 << 20));
        assert_eq!(req.seed, 42);
        assert_eq!(req.frontier_budget, Some(Some(65536)));
    }

    #[test]
    fn frontier_budget_tristate() {
        let parse = |raw: &str| parse_query(&Json::parse(raw.as_bytes()).unwrap());
        let base = r#""query":{"relations":[{"name":"R","attrs":["a"]}],"head":["a"]}"#;
        assert_eq!(parse(&format!("{{{base}}}")).unwrap().frontier_budget, None);
        assert_eq!(
            parse(&format!("{{{base},\"frontier_budget\":null}}"))
                .unwrap()
                .frontier_budget,
            Some(None)
        );
        assert_eq!(
            parse(&format!("{{{base},\"frontier_budget\":64}}"))
                .unwrap()
                .frontier_budget,
            Some(Some(64))
        );
        assert_eq!(
            parse(&format!("{{{base},\"frontier_budget\":-1}}"))
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn semantic_query_errors_come_back_typed() {
        // Self-join.
        let raw = br#"{"query":{"relations":[{"name":"R","attrs":["a"]},
                                              {"name":"R","attrs":["a"]}],"head":["a"]}}"#;
        let err = parse_query(&Json::parse(raw).unwrap()).unwrap_err();
        assert_eq!(err.code, "SELF_JOIN");
        // Unknown head attribute.
        let raw = br#"{"query":{"relations":[{"name":"R","attrs":["a"]}],"head":["z"]}}"#;
        let err = parse_query(&Json::parse(raw).unwrap()).unwrap_err();
        assert_eq!(err.code, "UNKNOWN_HEAD_ATTRIBUTE");
        // Unknown op.
        let raw = br#"{"query":{"relations":[{"name":"R","attrs":["a"]}],"head":["a"],
                       "predicates":[{"relation":"R","attribute":"a","op":"~","value":1}]}}"#;
        let err = parse_query(&Json::parse(raw).unwrap()).unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn values_round_trip_through_json() {
        let values = [
            Value::Null,
            Value::Int(-7),
            Value::Float(0.0028),
            Value::str("a'b\"c"),
            Value::Date(9140),
            Value::Bool(true),
        ];
        for v in &values {
            let j = value_to_json(v);
            let back = json_to_value(&Json::parse(j.render().as_bytes()).unwrap()).unwrap();
            assert_eq!(&back, v, "{}", j.render());
        }
        assert!(json_to_value(&Json::parse(b"[1]").unwrap()).is_err());
        assert!(json_to_value(&Json::parse(br#"{"x":1}"#).unwrap()).is_err());
    }
}
