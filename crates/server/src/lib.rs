//! # sprout-server
//!
//! A concurrent query service around [`sprout::SproutDb`]: an offline
//! HTTP/1.1 server on `std::net` (no external dependencies) with a small
//! wire protocol for registering tuple-independent tables, submitting
//! conjunctive queries with `conf()`, and streaming ranked answers.
//!
//! The point of the crate is the robustness layer, not the protocol:
//!
//! * **Admission control** — a bounded scheduler multiplexes every query
//!   over *one* shared worker-thread budget; each admitted query gets a
//!   morsel-budget share of it ([`admission`]).
//! * **Overload shedding** — full queue → `429`, queue timeout → `503`,
//!   both with `Retry-After`; the server never falls over, it says no.
//! * **Graceful degradation** — per-request deadlines and memory budgets
//!   ride the engine's governor; anytime-bounds queries return the best
//!   bracket reached at the deadline instead of failing.
//! * **Panic isolation** — a panic in any request handler (injected or
//!   real) becomes a well-formed `500`, never a dead server.
//! * **Graceful shutdown** — [`SproutServer::shutdown`] drains in-flight
//!   queries and answer streams, rejecting new work with `503`.
//! * **Observability** — `GET /metrics` renders the process-wide `pdb-obs`
//!   registry (admission gauges, per-stage latency histograms, sheds by
//!   code, deterministic engine counter totals) as Prometheus text;
//!   `GET /debug/queries` lists in-flight queries plus a ring of recent
//!   ones; `POST /query` accepts `"explain": "plan"` (describe the chosen
//!   plan without executing) and `"explain": "analyze"` (execute with span
//!   tracing and append a trailer line carrying the plan, the executed span
//!   tree, and the counter set).
//!
//! Because the engine is bitwise-deterministic at every pool size, answers
//! served under any admission schedule are bitwise-identical to
//! [`sprout::SproutDb::query_with_options`] run directly — the integration
//! tests and `bench_pr9` assert exactly that.
//!
//! ```no_run
//! use sprout_server::{ServerConfig, SproutServer};
//!
//! let db = sprout::SproutDb::new();
//! let server = SproutServer::bind(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! println!("serving on {}", server.addr());
//! server.shutdown();
//! ```

pub mod admission;
pub mod error;
pub mod http;
pub mod json;
pub mod metrics;
pub mod proto;
pub mod server;

pub use admission::{AdmissionControl, Admit, Lease, ShedInfo};
pub use error::WireError;
pub use json::Json;
pub use metrics::ServerMetrics;
pub use proto::{QueryRequest, TableSpec};
pub use server::{ServerConfig, SproutServer};
