//! The server's observability state: the process-wide [`Registry`] plus the
//! named metrics the request path bumps (stage latency histograms, shed and
//! outcome counters) and the `GET /debug/queries` ring buffer.
//!
//! Named metrics are registered once here at startup so the hot path only
//! touches pre-fetched `Arc`s — one relaxed atomic op per event, never the
//! registry lock. Everything timed is wall-clock and outside the engine's
//! determinism contract; the deterministic engine counters arrive separately
//! via [`Registry::merge`] from each finished query's `QueryObs`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use pdb_obs::{Histogram, Registry};

use crate::json::Json;

/// How many finished queries `GET /debug/queries` remembers.
const RING_CAPACITY: usize = 64;

/// Process-wide server metrics: the registry, the per-stage latency
/// histograms, and the outcome/shed counters.
#[derive(Debug)]
pub struct ServerMetrics {
    /// The registry `GET /metrics` renders (engine totals merge into it).
    pub registry: Registry,
    /// Time from arrival at the admission scheduler to a decision.
    pub admit_seconds: Arc<Histogram>,
    /// Time executing the query inside the engine.
    pub exec_seconds: Arc<Histogram>,
    /// Time streaming the answer NDJSON to the client.
    pub stream_seconds: Arc<Histogram>,
    /// Queries that ran to completion and streamed their answers.
    pub queries_ok: Arc<AtomicU64>,
    /// Queries that failed after admission (typed wire errors).
    pub queries_failed: Arc<AtomicU64>,
    shed_queue_full: Arc<AtomicU64>,
    shed_queue_timeout: Arc<AtomicU64>,
    shed_draining: Arc<AtomicU64>,
    ring: Mutex<DebugRing>,
}

impl ServerMetrics {
    /// Registers every named metric the server emits.
    pub fn new() -> ServerMetrics {
        let registry = Registry::new();
        let admit_seconds = registry.histogram(
            "sprout_admit_seconds",
            "Time from arrival to an admission decision (includes queueing).",
        );
        let exec_seconds = registry.histogram(
            "sprout_exec_seconds",
            "Query execution time inside the engine.",
        );
        let stream_seconds = registry.histogram(
            "sprout_stream_seconds",
            "Time streaming the answer NDJSON to the client.",
        );
        let queries_ok = registry.counter(
            "sprout_queries_ok_total",
            "Queries that completed and streamed their answers.",
        );
        let queries_failed = registry.counter(
            "sprout_queries_failed_total",
            "Admitted queries that failed with a typed wire error.",
        );
        const SHED_HELP: &str = "Requests shed by the admission scheduler, by response code.";
        let shed_queue_full =
            registry.counter_labeled("sprout_sheds_total", "code=\"QUEUE_FULL\"", SHED_HELP);
        let shed_queue_timeout =
            registry.counter_labeled("sprout_sheds_total", "code=\"QUEUE_TIMEOUT\"", SHED_HELP);
        let shed_draining =
            registry.counter_labeled("sprout_sheds_total", "code=\"DRAINING\"", SHED_HELP);
        ServerMetrics {
            registry,
            admit_seconds,
            exec_seconds,
            stream_seconds,
            queries_ok,
            queries_failed,
            shed_queue_full,
            shed_queue_timeout,
            shed_draining,
            ring: Mutex::new(DebugRing {
                next_id: 0,
                in_flight: Vec::new(),
                recent: VecDeque::new(),
            }),
        }
    }

    /// Bumps the shed counter for a response code.
    pub fn shed(&self, code: &str) {
        let c = match code {
            "QUEUE_FULL" => &self.shed_queue_full,
            "QUEUE_TIMEOUT" => &self.shed_queue_timeout,
            _ => &self.shed_draining,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers a query as in-flight; pair with [`finish`](Self::finish).
    pub fn begin(&self, summary: String, kind: String) -> u64 {
        let mut ring = self.ring.lock().expect("debug ring lock");
        let id = ring.next_id;
        ring.next_id += 1;
        ring.in_flight.push(InFlight {
            id,
            summary,
            kind,
            started: Instant::now(),
        });
        id
    }

    /// Moves an in-flight query into the finished ring with its outcome
    /// (`"ok"` or the wire error code) and the highlights of its counters.
    pub fn finish(&self, id: u64, status: &str, answers: usize, rows_scanned: u64) {
        let mut ring = self.ring.lock().expect("debug ring lock");
        let Some(pos) = ring.in_flight.iter().position(|q| q.id == id) else {
            return;
        };
        let started = ring.in_flight.swap_remove(pos);
        if ring.recent.len() == RING_CAPACITY {
            ring.recent.pop_front();
        }
        let elapsed_us = started.started.elapsed().as_micros() as u64;
        ring.recent.push_back(Finished {
            id,
            summary: started.summary,
            kind: started.kind,
            status: status.to_string(),
            answers,
            rows_scanned,
            elapsed_us,
        });
    }

    /// The `GET /debug/queries` body: in-flight queries plus the last-N
    /// finished ones, newest last.
    pub fn debug_queries(&self) -> Json {
        let ring = self.ring.lock().expect("debug ring lock");
        let in_flight = ring
            .in_flight
            .iter()
            .map(|q| {
                Json::Object(vec![
                    ("id".to_string(), Json::Int(q.id as i64)),
                    ("query".to_string(), Json::Str(q.summary.clone())),
                    ("kind".to_string(), Json::Str(q.kind.clone())),
                    (
                        "running_us".to_string(),
                        Json::Int(q.started.elapsed().as_micros() as i64),
                    ),
                ])
            })
            .collect();
        let recent = ring
            .recent
            .iter()
            .map(|q| {
                Json::Object(vec![
                    ("id".to_string(), Json::Int(q.id as i64)),
                    ("query".to_string(), Json::Str(q.summary.clone())),
                    ("kind".to_string(), Json::Str(q.kind.clone())),
                    ("status".to_string(), Json::Str(q.status.clone())),
                    ("answers".to_string(), Json::Int(q.answers as i64)),
                    ("rows_scanned".to_string(), Json::Int(q.rows_scanned as i64)),
                    ("elapsed_us".to_string(), Json::Int(q.elapsed_us as i64)),
                ])
            })
            .collect();
        Json::Object(vec![
            ("in_flight".to_string(), Json::Array(in_flight)),
            ("recent".to_string(), Json::Array(recent)),
        ])
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

#[derive(Debug)]
struct InFlight {
    id: u64,
    summary: String,
    kind: String,
    started: Instant,
}

#[derive(Debug)]
struct Finished {
    id: u64,
    summary: String,
    kind: String,
    status: String,
    answers: usize,
    rows_scanned: u64,
    elapsed_us: u64,
}

#[derive(Debug)]
struct DebugRing {
    next_id: u64,
    in_flight: Vec<InFlight>,
    recent: VecDeque<Finished>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_tracks_in_flight_then_recent_and_caps() {
        let m = ServerMetrics::new();
        let id = m.begin("R(a)".to_string(), "lazy".to_string());
        let body = m.debug_queries();
        let in_flight = body.get("in_flight").unwrap().as_array().unwrap();
        assert_eq!(in_flight.len(), 1);
        assert_eq!(in_flight[0].get("query").unwrap().as_str(), Some("R(a)"));
        m.finish(id, "ok", 3, 100);
        let body = m.debug_queries();
        assert!(body
            .get("in_flight")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        let recent = body.get("recent").unwrap().as_array().unwrap();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(recent[0].get("answers").unwrap().as_i64(), Some(3));
        // The ring caps at RING_CAPACITY, dropping the oldest.
        for i in 0..(RING_CAPACITY as u64 + 10) {
            let id = m.begin(format!("q{i}"), "lazy".to_string());
            m.finish(id, "ok", 0, 0);
        }
        let body = m.debug_queries();
        let recent = body.get("recent").unwrap().as_array().unwrap();
        assert_eq!(recent.len(), RING_CAPACITY);
        // Finishing an unknown id is a no-op, not a panic.
        m.finish(u64::MAX, "ok", 0, 0);
    }

    #[test]
    fn shed_counters_land_under_their_code() {
        let m = ServerMetrics::new();
        m.shed("QUEUE_FULL");
        m.shed("QUEUE_FULL");
        m.shed("QUEUE_TIMEOUT");
        m.shed("DRAINING");
        let mut page = pdb_obs::PromText::new();
        m.registry.render(&mut page);
        let text = page.finish();
        assert!(text.contains("sprout_sheds_total{code=\"QUEUE_FULL\"} 2\n"));
        assert!(text.contains("sprout_sheds_total{code=\"QUEUE_TIMEOUT\"} 1\n"));
        assert!(text.contains("sprout_sheds_total{code=\"DRAINING\"} 1\n"));
    }
}
