//! A minimal JSON codec for the wire protocol.
//!
//! The build environment is offline, so the server cannot pull in `serde`;
//! this module implements the small JSON subset the protocol needs with two
//! properties the engine's determinism contract depends on:
//!
//! * **Int/Float distinction** — numbers without a fraction or exponent parse
//!   as [`Json::Int`], everything else as [`Json::Float`], mirroring the
//!   storage layer's `Value::Int` / `Value::Float` split.
//! * **Round-trip floats** — floats render through Rust's shortest-round-trip
//!   formatting (`{:?}`), so a confidence written to the wire parses back to
//!   the *same bits*. This is what lets the benchmark assert `max |Δp| = 0`
//!   between served and library answers.
//!
//! Objects preserve insertion order (they are association lists, not maps),
//! keeping serialized responses byte-stable across runs.

use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number with no fraction or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes the document (compact, no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // Shortest round-trip form; always contains `.` or `e`
                    // so it re-parses as Float, never as Int.
                    let _ = write!(out, "{f:?}");
                } else {
                    // JSON has no Inf/NaN; none of the protocol's numbers
                    // (probabilities, timings) are non-finite in practice.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (rejects trailing garbage).
    ///
    /// # Errors
    /// Returns a description and byte offset of the first syntax error.
    pub fn parse(input: impl AsRef<[u8]>) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_ref(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting. Recursion depth is bounded by input depth, so
/// without a cap a body of ~100k `[`s (well under the request size limit)
/// would overflow the connection thread's stack — and a stack overflow
/// aborts the process, bypassing every `catch_unwind` isolation layer.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        self.depth += 1;
        let value = match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        };
        self.depth -= 1;
        value
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs in one go (the input is valid UTF-8).
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("unpaired surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?,
                            );
                        }
                        other => {
                            return Err(format!("invalid escape `\\{}`", other as char));
                        }
                    }
                }
                Some(_) => return Err(format!("control character at byte {}", self.pos)),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let s = std::str::from_utf8(slice).map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("invalid number `{text}`"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("invalid number `{text}`"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trip() {
        let doc = r#"{"a":[1,2.5,"x",null,true,false],"b":{"c":-3}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.render(), doc);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 6);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_i64(), Some(-3));
    }

    #[test]
    fn ints_and_floats_stay_distinct() {
        assert_eq!(Json::parse("5").unwrap(), Json::Int(5));
        assert_eq!(Json::parse("5.0").unwrap(), Json::Float(5.0));
        assert_eq!(Json::parse("5e0").unwrap(), Json::Float(5.0));
        // A whole-valued float renders with its `.0` and parses back Float.
        assert_eq!(Json::Float(5.0).render(), "5.0");
        assert_eq!(
            Json::parse(Json::Float(5.0).render()).unwrap(),
            Json::Float(5.0)
        );
    }

    #[test]
    fn floats_round_trip_bitwise() {
        for f in [0.0028, 1.0 / 3.0, f64::MIN_POSITIVE, 0.1 + 0.2, 1e-300] {
            let rendered = Json::Float(f).render();
            match Json::parse(&rendered).unwrap() {
                Json::Float(g) => assert_eq!(f.to_bits(), g.to_bits(), "{rendered}"),
                other => panic!("expected float, got {other:?}"),
            }
        }
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndA😀");
        let s = Json::str("tab\there\nnl\u{0001}");
        assert_eq!(s.render(), r#""tab\there\nnl\u0001""#);
        assert_eq!(Json::parse(s.render()).unwrap(), s);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"unterminated",
            "{\"a\"}",
            "1 2",
            "[1]]",
            "--1",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // Just under the cap parses; one deeper is a parse error, and a
        // pathological 100k-deep body errors instead of blowing the stack.
        let deep = |n: usize| format!("{}0{}", "[".repeat(n), "]".repeat(n));
        assert!(Json::parse(deep(MAX_DEPTH - 1)).is_ok());
        let err = Json::parse(deep(MAX_DEPTH)).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        assert!(Json::parse("[".repeat(100_000)).is_err());
        let mixed = format!("{}1{}", r#"{"k":["#.repeat(80), "]}".repeat(80));
        assert!(Json::parse(mixed).unwrap_err().contains("nesting"));
    }

    #[test]
    fn object_helpers() {
        let v = Json::parse(r#"{"s":"x","i":1,"f":1.5,"b":true,"n":null}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("i").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(v.get("n").unwrap().is_null());
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
    }
}
