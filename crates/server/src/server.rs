//! The concurrent query service around [`SproutDb`].
//!
//! One `std::net::TcpListener` accept loop, one thread per connection
//! (HTTP/1.1 with keep-alive), and the [`AdmissionControl`] scheduler
//! between parsing and execution. Every request runs inside
//! `catch_unwind`, so a panic anywhere in the handler — injected via
//! `pdb-fault` or real — becomes a well-formed `500 WORKER_PANIC` response
//! instead of a dead connection or a dead server.
//!
//! Fault sites (active under the `fault-inject` feature, one-shot,
//! deterministic): `server.accept` (indexed by connection sequence),
//! `server.parse`, `server.admit`, `server.exec`, `server.stream` (indexed
//! by the request's position on its connection).

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use pdb_fault::{sites, FaultAction};
use pdb_obs::{PromText, QueryObs};
use sprout::{ExplainMode, GovernorBuilder};

use crate::admission::{AdmissionControl, Admit, ShedInfo};
use crate::error::{self, WireError};
use crate::http::{self, ChunkedWriter, ParseError, Request};
use crate::json::Json;
use crate::metrics::ServerMetrics;
use crate::proto;

/// Server tuning knobs. [`Default`] is sized for tests and small
/// deployments; benchmarks override it.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent query slots (admitted queries executing at once).
    pub slots: usize,
    /// Bounded wait queue behind the slots; 0 sheds immediately.
    pub queue_depth: usize,
    /// How long a request may wait in the queue before being shed.
    pub queue_timeout: Duration,
    /// Total engine worker threads shared across admitted queries.
    pub worker_threads: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Socket read timeout (slow or stalled clients).
    pub read_timeout: Duration,
    /// Socket write timeout (slow readers of the answer stream).
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            slots: 2,
            queue_depth: 8,
            queue_timeout: Duration::from_secs(1),
            worker_threads: thread::available_parallelism().map_or(4, usize::from),
            max_body_bytes: 8 << 20,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

struct Shared {
    db: sprout::SproutDb,
    admission: AdmissionControl,
    config: ServerConfig,
    metrics: ServerMetrics,
    shutting_down: AtomicBool,
    conn_seq: AtomicU64,
}

/// One accepted connection: its serving thread plus a second socket handle
/// shutdown uses to unblock a parked reader.
struct Conn {
    handle: JoinHandle<()>,
    peer: Option<TcpStream>,
}

/// A running server. Dropping it without [`shutdown`](Self::shutdown)
/// leaves the accept thread running until process exit; call `shutdown`
/// for a graceful drain.
pub struct SproutServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<Conn>>>,
}

impl SproutServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving `db`.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind(
        db: sprout::SproutDb,
        addr: &str,
        config: ServerConfig,
    ) -> io::Result<SproutServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            db,
            admission: AdmissionControl::new(
                config.slots,
                config.queue_depth,
                config.worker_threads,
            ),
            config,
            metrics: ServerMetrics::new(),
            shutting_down: AtomicBool::new(false),
            conn_seq: AtomicU64::new(0),
        });
        let conns: Arc<Mutex<Vec<Conn>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&conns);
        let accept = thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match stream {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let conn_id = accept_shared.conn_seq.fetch_add(1, Ordering::SeqCst);
                // A second handle to the socket lets shutdown unblock a
                // parked reader without touching the write half.
                let peer = stream.try_clone().ok();
                let conn_shared = Arc::clone(&accept_shared);
                let handle = thread::spawn(move || {
                    // The whole connection is panic-isolated: whatever
                    // escapes the per-request guard only kills this
                    // connection, never the server.
                    let _ = catch_unwind(AssertUnwindSafe(|| {
                        serve_connection(&conn_shared, stream, conn_id);
                    }));
                });
                let mut guard = accept_conns.lock().expect("conns lock");
                guard.retain(|c| !c.handle.is_finished());
                guard.push(Conn { handle, peer });
            }
        });

        Ok(SproutServer {
            addr,
            shared,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts draining without stopping the listener: every new query (and
    /// table registration) is rejected with `503 DRAINING` while in-flight
    /// queries and answer streams run to completion. [`shutdown`]
    /// (Self::shutdown) implies this.
    pub fn drain(&self) {
        self.shared.admission.drain();
    }

    /// Graceful shutdown: stop accepting, reject new queries with 503,
    /// finish every admitted query and its answer stream, then return.
    pub fn shutdown(mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.admission.drain();
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Unblock parked readers by closing the read half only: idle
        // keep-alive connections see EOF and exit immediately, while
        // in-flight answer streams keep their write half and finish.
        for conn in self.conns.lock().expect("conns lock").iter() {
            if let Some(peer) = &conn.peer {
                let _ = peer.shutdown(std::net::Shutdown::Read);
            }
        }
        loop {
            let conn = self.conns.lock().expect("conns lock").pop();
            match conn {
                Some(c) => {
                    let _ = c.handle.join();
                }
                None => break,
            }
        }
        self.shared.admission.await_idle();
    }
}

fn serve_connection(shared: &Shared, stream: TcpStream, conn_id: u64) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    for req_index in 0.. {
        match serve_one(shared, &mut reader, &mut writer, conn_id, req_index) {
            Ok(true) => continue,
            Ok(false) | Err(_) => break,
        }
    }
}

/// Serves one request. `Ok(true)` keeps the connection alive.
fn serve_one(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    conn_id: u64,
    req_index: usize,
) -> io::Result<bool> {
    if req_index == 0 {
        if let Err(e) = site_fault(sites::SERVER_ACCEPT, conn_id as usize) {
            respond_error(writer, &e)?;
            return Ok(false);
        }
    }
    let request = match http::read_request(reader, shared.config.max_body_bytes) {
        Ok(r) => r,
        Err(ParseError::ConnectionClosed) => return Ok(false),
        Err(ParseError::Io(e)) => return Err(e),
        Err(ParseError::Malformed(m)) => {
            respond_error(writer, &WireError::new(400, "MALFORMED_REQUEST", m))?;
            return Ok(false);
        }
        Err(ParseError::BodyTooLarge { declared, limit }) => {
            respond_error(
                writer,
                &WireError::new(
                    413,
                    "BODY_TOO_LARGE",
                    format!("request body of {declared} bytes exceeds the {limit}-byte limit"),
                ),
            )?;
            return Ok(false);
        }
    };
    let keep_alive = request.header("connection").map(str::to_ascii_lowercase)
        != Some("close".to_string())
        && !shared.shutting_down.load(Ordering::SeqCst);

    // Panic isolation: anything that unwinds out of dispatch becomes a
    // clean 500 on this connection — unless a response head is already on
    // the wire, in which case writing a second response would corrupt the
    // stream and desynchronize every request behind it, so the connection
    // is closed instead (the truncated chunked body marks the failure).
    let streaming = AtomicBool::new(false);
    let dispatched = catch_unwind(AssertUnwindSafe(|| {
        dispatch(shared, &request, writer, req_index, &streaming)
    }));
    match dispatched {
        Ok(io_result) => io_result?,
        Err(_) if streaming.load(Ordering::SeqCst) => return Ok(false),
        Err(_) => respond_error(
            writer,
            &WireError::new(
                500,
                "WORKER_PANIC",
                "the request handler panicked; the failure is isolated to this request",
            ),
        )?,
    }
    Ok(keep_alive)
}

fn dispatch(
    shared: &Shared,
    request: &Request,
    writer: &mut TcpStream,
    req_index: usize,
    streaming: &AtomicBool,
) -> io::Result<()> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => health(shared, writer),
        ("GET", "/metrics") => metrics(shared, writer),
        ("GET", "/debug/queries") => http::write_response(
            writer,
            200,
            &[],
            shared.metrics.debug_queries().render().as_bytes(),
        ),
        ("POST", "/tables") => match handle_tables(shared, request, req_index) {
            Ok(body) => http::write_response(writer, 201, &[], body.render().as_bytes()),
            Err(e) => respond_error(writer, &e),
        },
        ("POST", "/query") => handle_query(shared, request, writer, req_index, streaming),
        ("POST", "/health")
        | ("POST", "/metrics")
        | ("POST", "/debug/queries")
        | ("GET", "/tables")
        | ("GET", "/query") => respond_error(
            writer,
            &WireError::new(
                405,
                "METHOD_NOT_ALLOWED",
                format!("{} is not supported on {}", request.method, request.path),
            ),
        ),
        _ => respond_error(
            writer,
            &WireError::new(
                404,
                "NOT_FOUND",
                format!("unknown endpoint {} {}", request.method, request.path),
            ),
        ),
    }
}

fn health(shared: &Shared, writer: &mut TcpStream) -> io::Result<()> {
    let (active, queued) = shared.admission.load();
    let draining = shared.admission.is_draining();
    let body = Json::Object(vec![
        (
            "status".to_string(),
            Json::Str(if draining { "draining" } else { "ok" }.to_string()),
        ),
        ("version".to_string(), Json::str(env!("CARGO_PKG_VERSION"))),
        (
            "uptime_s".to_string(),
            Json::Float(shared.metrics.registry.uptime().as_secs_f64()),
        ),
        ("active".to_string(), Json::Int(active as i64)),
        ("queued".to_string(), Json::Int(queued as i64)),
        (
            "slots".to_string(),
            Json::Int(shared.admission.slots() as i64),
        ),
        (
            "queue_depth".to_string(),
            Json::Int(shared.admission.queue_depth() as i64),
        ),
        (
            "tables".to_string(),
            Json::Int(shared.db.catalog().table_names().len() as i64),
        ),
    ]);
    http::write_response(writer, 200, &[], body.render().as_bytes())
}

/// `GET /metrics`: the Prometheus text page. Admission gauges are sampled
/// here; counters, histograms and engine totals come from the registry.
fn metrics(shared: &Shared, writer: &mut TcpStream) -> io::Result<()> {
    let (active, queued) = shared.admission.load();
    let mut page = PromText::new();
    page.gauge(
        "sprout_uptime_seconds",
        "Seconds since the server started.",
        shared.metrics.registry.uptime().as_secs_f64(),
    );
    page.gauge(
        "sprout_active_queries",
        "Admitted queries currently executing or streaming.",
        active as f64,
    );
    page.gauge(
        "sprout_queued_queries",
        "Requests parked in the admission queue.",
        queued as f64,
    );
    page.gauge(
        "sprout_admission_slots",
        "Configured concurrent-query slots.",
        shared.admission.slots() as f64,
    );
    page.gauge(
        "sprout_admission_queue_depth",
        "Configured admission queue depth.",
        shared.admission.queue_depth() as f64,
    );
    page.gauge(
        "sprout_draining",
        "1 while the server is draining for shutdown.",
        if shared.admission.is_draining() {
            1.0
        } else {
            0.0
        },
    );
    let catalog = shared.db.catalog();
    let mut names = catalog.table_names();
    names.sort_unstable();
    page.gauge(
        "sprout_catalog_tables",
        "Registered tables.",
        names.len() as f64,
    );
    let rows: Vec<(String, f64)> = names
        .iter()
        .map(|name| {
            let rows = catalog.table(name).map_or(0, |t| t.len());
            (
                format!("table=\"{}\"", pdb_obs::escape_label(name)),
                rows as f64,
            )
        })
        .collect();
    if !rows.is_empty() {
        page.gauge_labeled("sprout_table_rows", "Rows per registered table.", &rows);
    }
    shared.metrics.registry.render(&mut page);
    http::write_response_with_type(
        writer,
        200,
        "text/plain; version=0.0.4",
        &[],
        page.finish().as_bytes(),
    )
}

fn handle_tables(shared: &Shared, request: &Request, req_index: usize) -> Result<Json, WireError> {
    site_fault(sites::SERVER_PARSE, req_index)?;
    if shared.admission.is_draining() {
        return Err(draining_error());
    }
    let body = Json::parse(&request.body).map_err(|e| WireError::new(400, "INVALID_JSON", e))?;
    let spec = proto::parse_table(&body)?;
    shared
        .db
        .register_table(&spec.name, spec.table)
        .map_err(|e| error::from_plan_error(&e))?;
    for key in &spec.keys {
        let attrs: Vec<&str> = key.iter().map(String::as_str).collect();
        shared
            .db
            .declare_key(&spec.name, &attrs)
            .map_err(|e| error::from_plan_error(&e))?;
    }
    for (lhs, rhs) in &spec.fds {
        let lhs: Vec<&str> = lhs.iter().map(String::as_str).collect();
        let rhs: Vec<&str> = rhs.iter().map(String::as_str).collect();
        shared
            .db
            .declare_fd(&spec.name, &lhs, &rhs)
            .map_err(|e| error::from_plan_error(&e))?;
    }
    Ok(Json::Object(vec![
        ("table".to_string(), Json::Str(spec.name.clone())),
        (
            "rows".to_string(),
            Json::Int(shared.db.catalog().table(&spec.name).map_or(0, |t| t.len()) as i64),
        ),
    ]))
}

fn handle_query(
    shared: &Shared,
    request: &Request,
    writer: &mut TcpStream,
    req_index: usize,
    streaming: &AtomicBool,
) -> io::Result<()> {
    // Parse stage.
    let parsed = site_fault(sites::SERVER_PARSE, req_index)
        .and_then(|()| {
            Json::parse(&request.body).map_err(|e| WireError::new(400, "INVALID_JSON", e))
        })
        .and_then(|body| proto::parse_query(&body));
    let req = match parsed {
        Ok(r) => r,
        Err(e) => return respond_error(writer, &e),
    };

    // EXPLAIN without ANALYZE: a catalog-only planning pass, no execution,
    // so it answers ahead of admission even on an overloaded server.
    if req.explain == Some(ExplainMode::Plan) {
        let opts = query_options(&req, None);
        return match shared.db.explain_with_options(&req.query, &opts) {
            Ok(ex) => http::write_response(
                writer,
                200,
                &[],
                proto::explain_json(&ex).render().as_bytes(),
            ),
            Err(e) => respond_error(writer, &error::from_plan_error(&e)),
        };
    }

    // Admission stage.
    if let Err(e) = site_fault(sites::SERVER_ADMIT, req_index) {
        return respond_error(writer, &e);
    }
    let admit_start = Instant::now();
    let admitted = shared.admission.admit(shared.config.queue_timeout);
    shared
        .metrics
        .admit_seconds
        .observe(admit_start.elapsed().as_secs_f64());
    let lease = match admitted {
        Admit::Admitted(lease) => lease,
        Admit::QueueFull(info) => {
            shared.metrics.shed("QUEUE_FULL");
            return respond_error(
                writer,
                &WireError::new(
                    429,
                    "QUEUE_FULL",
                    "all execution slots are busy and the wait queue is full",
                )
                .with_detail(shed_detail(&info))
                .with_retry_after(shared.admission.retry_after_hint()),
            );
        }
        Admit::Timeout(info) => {
            shared.metrics.shed("QUEUE_TIMEOUT");
            return respond_error(
                writer,
                &WireError::new(
                    503,
                    "QUEUE_TIMEOUT",
                    "no execution slot became free within the queue timeout",
                )
                .with_detail(shed_detail(&info))
                .with_retry_after(shared.admission.retry_after_hint()),
            );
        }
        Admit::Draining => {
            shared.metrics.shed("DRAINING");
            return respond_error(writer, &draining_error());
        }
    };

    // Every admitted query gets a collector; EXPLAIN ANALYZE additionally
    // records the span tree. Pure telemetry either way — answers are
    // bitwise-identical with or without it.
    let obs = if req.explain == Some(ExplainMode::Analyze) {
        QueryObs::with_tracing()
    } else {
        QueryObs::new()
    };
    let ring_id = shared.metrics.begin(
        query_summary(&req.query),
        req.kind
            .clone()
            .unwrap_or(sprout::PlanKind::Lazy)
            .to_string(),
    );

    // Execution stage: the lease's thread share is this query's slice of
    // the shared worker budget; the governor carries its deadline and
    // memory budget.
    let exec_start = Instant::now();
    let result = site_fault(sites::SERVER_EXEC, req_index).and_then(|()| {
        let mut opts = query_options(&req, Some(Arc::clone(&obs)));
        opts.pool = Some(sprout::Pool::new(lease.thread_share()));
        shared
            .db
            .query_with_options(&req.query, &opts)
            .map_err(|e| error::from_plan_error(&e))
    });
    shared
        .metrics
        .exec_seconds
        .observe(exec_start.elapsed().as_secs_f64());
    // Merge even failed queries: the work their counters describe was done.
    shared.metrics.registry.merge(&obs);
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            finish_query(shared, ring_id, e.code, 0, &obs);
            drop(lease);
            return respond_error(writer, &e);
        }
    };

    // Streaming stage: the lease stays held until the stream is flushed,
    // so drain waits for in-flight responses, not just computations.
    if let Err(e) = site_fault(sites::SERVER_STREAM, req_index) {
        finish_query(shared, ring_id, e.code, 0, &obs);
        drop(lease);
        return respond_error(writer, &e);
    }
    // Materialize every answer line before writing the chunked head: a
    // panic while rendering still gets a clean single-response 500, and
    // once the head is on the wire nothing but the socket can fail.
    let lines = match catch_unwind(AssertUnwindSafe(|| {
        let mut lines = proto::answer_lines(&report);
        if req.explain == Some(ExplainMode::Analyze) {
            // The trailer re-explains under the executed options so the
            // reported plan is the one that actually ran.
            let opts = query_options(&req, None);
            let explained = shared.db.explain_with_options(&req.query, &opts).ok();
            lines.push(proto::analyze_trailer(explained.as_ref(), &obs).render());
        }
        lines
    })) {
        Ok(lines) => lines,
        Err(_) => {
            finish_query(shared, ring_id, "WORKER_PANIC", 0, &obs);
            drop(lease);
            return respond_error(
                writer,
                &WireError::new(
                    500,
                    "WORKER_PANIC",
                    "rendering the answer stream panicked; the failure is isolated to this request",
                ),
            );
        }
    };
    streaming.store(true, Ordering::SeqCst);
    let stream_start = Instant::now();
    let mut chunked = ChunkedWriter::start(writer, &[])?;
    for line in lines {
        let mut bytes = line.into_bytes();
        bytes.push(b'\n');
        chunked.chunk(&bytes)?;
    }
    chunked.finish()?;
    shared
        .metrics
        .stream_seconds
        .observe(stream_start.elapsed().as_secs_f64());
    finish_query(shared, ring_id, "ok", report.confidences.len(), &obs);
    drop(lease);
    Ok(())
}

/// The options bundle `POST /query` executes (and explains) under.
fn query_options(req: &proto::QueryRequest, obs: Option<Arc<QueryObs>>) -> sprout::QueryOptions {
    let mut opts = sprout::QueryOptions {
        kind: req.kind.clone(),
        policy: req.policy,
        pool: None,
        seed: req.seed,
        frontier_budget: req.frontier_budget,
        governor: None,
        obs,
        explain: req.explain,
    };
    if req.deadline_ms.is_some() || req.memory_budget.is_some() {
        let mut builder = GovernorBuilder::new();
        if let Some(ms) = req.deadline_ms {
            builder = builder.deadline(Duration::from_millis(ms));
        }
        if let Some(bytes) = req.memory_budget {
            builder = builder.memory_budget(bytes);
        }
        opts.governor = Some(builder.build());
    }
    opts
}

/// A one-line query rendering for `GET /debug/queries`.
fn query_summary(query: &sprout::ConjunctiveQuery) -> String {
    let atoms: Vec<String> = query
        .relations
        .iter()
        .map(|r| format!("{}({})", r.name, r.attributes.join(",")))
        .collect();
    atoms.join(" ⋈ ")
}

fn finish_query(shared: &Shared, ring_id: u64, status: &str, answers: usize, obs: &QueryObs) {
    let outcome = if status == "ok" {
        &shared.metrics.queries_ok
    } else {
        &shared.metrics.queries_failed
    };
    outcome.fetch_add(1, Ordering::Relaxed);
    shared.metrics.finish(
        ring_id,
        status,
        answers,
        obs.get(pdb_obs::Counter::RowsScanned),
    );
}

/// Renders the load snapshot a shed carried into the error `detail`, so a
/// `429`/`503` is debuggable from the wire alone.
fn shed_detail(info: &ShedInfo) -> Json {
    Json::Object(vec![
        ("active".to_string(), Json::Int(info.active as i64)),
        ("queued".to_string(), Json::Int(info.queued as i64)),
        ("slots".to_string(), Json::Int(info.slots as i64)),
        (
            "queue_depth".to_string(),
            Json::Int(info.queue_depth as i64),
        ),
        (
            "waited_ms".to_string(),
            Json::Int(info.waited.as_millis() as i64),
        ),
    ])
}

fn draining_error() -> WireError {
    WireError::new(503, "DRAINING", "the server is shutting down").with_retry_after(1)
}

fn respond_error(writer: &mut TcpStream, e: &WireError) -> io::Result<()> {
    let mut headers: Vec<(&str, String)> = Vec::new();
    if let Some(seconds) = e.retry_after {
        headers.push(("Retry-After", seconds.to_string()));
    }
    http::write_response(writer, e.status, &headers, e.body().render().as_bytes())
}

/// Applies a one-shot injected fault for a server site: `Slow` sleeps,
/// `Cancel`/`Budget` synthesize their governor-style wire errors, and
/// `Panic` panics through a local `catch_unwind` so the isolation path is
/// the one real panics take, while the client still sees a well-formed
/// `500`.
fn site_fault(site: &str, index: usize) -> Result<(), WireError> {
    match pdb_fault::probe(site, index) {
        None => Ok(()),
        Some(FaultAction::Slow(ms)) => {
            thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        Some(FaultAction::Cancel) => Err(WireError::new(
            499,
            "CANCELLED",
            format!("injected cancellation at {site}"),
        )),
        Some(FaultAction::Budget) => Err(WireError::new(
            507,
            "MEMORY_BUDGET_EXCEEDED",
            format!("injected budget exhaustion at {site}"),
        )),
        Some(FaultAction::Panic) => {
            let caught = catch_unwind(|| panic!("injected fault at {site}"));
            debug_assert!(caught.is_err());
            Err(WireError::new(
                500,
                "WORKER_PANIC",
                format!("worker panicked at {site}; the failure is isolated to this request"),
            ))
        }
    }
}
