//! The admission scheduler: a fixed number of execution slots over **one**
//! shared worker-thread budget, a bounded wait queue, and overload shedding.
//!
//! Every admitted query gets a [`Lease`] whose [`thread_share`] is its morsel
//! budget: `max(1, worker_threads / slots)` threads of the shared `pdb-par`
//! pool policy. The share is a *static* per-slot split — a pool handed to a
//! query cannot be resized mid-flight, so sizing by the instantaneous active
//! count would let concurrently held shares sum past the budget (an early
//! lone query keeps its large share after later queries are admitted).
//! Dividing by `slots` guarantees held shares never exceed `worker_threads`
//! whenever `worker_threads >= slots`. The share is purely a performance
//! dial, never a correctness one: the engine produces bitwise-identical
//! results at every pool size.
//!
//! Shedding policy once all slots are busy:
//!
//! * queue has room → wait up to the configured timeout for a slot;
//! * queue full → [`Admit::QueueFull`] (HTTP 429 + `Retry-After`);
//! * timeout in the queue → [`Admit::Timeout`] (HTTP 503 + `Retry-After`);
//! * server draining → [`Admit::Draining`] (HTTP 503), immediately.
//!
//! Graceful shutdown: [`AdmissionControl::drain`] flips the draining flag
//! (new arrivals are rejected, queued waiters wake up and are rejected) and
//! [`AdmissionControl::await_idle`] blocks until every in-flight lease is
//! returned.
//!
//! [`thread_share`]: Lease::thread_share

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct State {
    /// Leases currently held.
    active: usize,
    /// Waiters currently parked in the queue.
    queued: usize,
    /// Draining: reject new work, finish in-flight work.
    draining: bool,
}

#[derive(Debug)]
struct Inner {
    state: Mutex<State>,
    /// Signalled on lease return and on drain.
    cv: Condvar,
    slots: usize,
    queue_depth: usize,
    worker_threads: usize,
}

/// The load observed at the instant a request was shed — what makes a
/// `429`/`503` debuggable from the wire alone: how long the request actually
/// waited against the configured timeout, and how loaded the scheduler was
/// against its configured capacity.
#[derive(Debug, Clone, Copy)]
pub struct ShedInfo {
    /// Leases held when the request was shed.
    pub active: usize,
    /// Waiters still parked when the request was shed.
    pub queued: usize,
    /// Configured concurrent-query slots.
    pub slots: usize,
    /// Configured queue depth.
    pub queue_depth: usize,
    /// How long the request waited before being shed (zero for a full
    /// queue, up to the configured timeout for a queue timeout).
    pub waited: Duration,
}

/// The outcome of an admission attempt.
#[derive(Debug)]
pub enum Admit {
    /// Admitted; hold the lease for the duration of the query.
    Admitted(Lease),
    /// Shed: every slot busy and the wait queue is full.
    QueueFull(ShedInfo),
    /// Shed: waited the full queue timeout without getting a slot.
    Timeout(ShedInfo),
    /// Rejected: the server is draining for shutdown.
    Draining,
}

/// Admission control over one shared worker-thread budget.
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    inner: Arc<Inner>,
}

impl AdmissionControl {
    /// A scheduler with `slots` concurrent queries, `queue_depth` waiters,
    /// and `worker_threads` total engine threads to share out (all clamped
    /// to at least 1... except `queue_depth`, where 0 means "never queue").
    pub fn new(slots: usize, queue_depth: usize, worker_threads: usize) -> AdmissionControl {
        AdmissionControl {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    active: 0,
                    queued: 0,
                    draining: false,
                }),
                cv: Condvar::new(),
                slots: slots.max(1),
                queue_depth,
                worker_threads: worker_threads.max(1),
            }),
        }
    }

    /// Tries to admit one query, waiting in the bounded queue for up to
    /// `queue_timeout` when all slots are busy.
    pub fn admit(&self, queue_timeout: Duration) -> Admit {
        let mut state = self.inner.state.lock().expect("admission lock");
        if state.draining {
            return Admit::Draining;
        }
        if state.active < self.inner.slots {
            state.active += 1;
            return Admit::Admitted(self.lease());
        }
        if state.queued >= self.inner.queue_depth {
            return Admit::QueueFull(self.shed_info(&state, Duration::ZERO));
        }
        state.queued += 1;
        let start = Instant::now();
        let deadline = start + queue_timeout;
        loop {
            let now = Instant::now();
            if state.draining {
                state.queued -= 1;
                return Admit::Draining;
            }
            if state.active < self.inner.slots {
                state.queued -= 1;
                state.active += 1;
                return Admit::Admitted(self.lease());
            }
            if now >= deadline {
                state.queued -= 1;
                return Admit::Timeout(self.shed_info(&state, now - start));
            }
            let (guard, _) = self
                .inner
                .cv
                .wait_timeout(state, deadline - now)
                .expect("admission lock");
            state = guard;
        }
    }

    fn lease(&self) -> Lease {
        Lease {
            inner: Arc::clone(&self.inner),
            threads: (self.inner.worker_threads / self.inner.slots).max(1),
        }
    }

    fn shed_info(&self, state: &State, waited: Duration) -> ShedInfo {
        ShedInfo {
            active: state.active,
            queued: state.queued,
            slots: self.inner.slots,
            queue_depth: self.inner.queue_depth,
            waited,
        }
    }

    /// Configured concurrent-query slots.
    pub fn slots(&self) -> usize {
        self.inner.slots
    }

    /// Configured queue depth.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue_depth
    }

    /// Starts draining: every subsequent [`admit`](Self::admit) (and every
    /// parked waiter) is rejected with [`Admit::Draining`]; in-flight leases
    /// run to completion.
    pub fn drain(&self) {
        let mut state = self.inner.state.lock().expect("admission lock");
        state.draining = true;
        drop(state);
        self.inner.cv.notify_all();
    }

    /// Whether the scheduler is draining.
    pub fn is_draining(&self) -> bool {
        self.inner.state.lock().expect("admission lock").draining
    }

    /// Blocks until no lease is outstanding (used by graceful shutdown after
    /// [`drain`](Self::drain)).
    pub fn await_idle(&self) {
        let mut state = self.inner.state.lock().expect("admission lock");
        while state.active > 0 {
            state = self.inner.cv.wait(state).expect("admission lock");
        }
    }

    /// `(active, queued)` snapshot for health reporting.
    pub fn load(&self) -> (usize, usize) {
        let state = self.inner.state.lock().expect("admission lock");
        (state.active, state.queued)
    }

    /// A `Retry-After` hint in seconds: one second per queued-or-active
    /// query ahead of the shed request, clamped to `[1, 30]`. Coarse on
    /// purpose — it is a backoff hint, not a promise.
    pub fn retry_after_hint(&self) -> u64 {
        let (active, queued) = self.load();
        ((active + queued) as u64).clamp(1, 30)
    }
}

/// An admission slot held for the duration of one query. Dropping the lease
/// returns the slot and wakes one waiter.
#[derive(Debug)]
pub struct Lease {
    inner: Arc<Inner>,
    threads: usize,
}

impl Lease {
    /// This query's share of the shared worker-thread budget (its `pdb-par`
    /// pool size): `worker_threads / slots`, at least 1. Static per slot, so
    /// concurrently held shares never oversubscribe the budget.
    pub fn thread_share(&self) -> usize {
        self.threads
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().expect("admission lock");
        state.active -= 1;
        drop(state);
        // Wake everyone: queued waiters race for the slot under the lock,
        // and await_idle needs to observe active == 0.
        self.inner.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::thread;

    const SHORT: Duration = Duration::from_millis(20);

    #[test]
    fn admits_up_to_slots_then_queues_then_sheds() {
        let adm = AdmissionControl::new(2, 1, 8);
        let a = match adm.admit(SHORT) {
            Admit::Admitted(l) => l,
            other => panic!("{other:?}"),
        };
        assert_eq!(a.thread_share(), 4);
        let b = match adm.admit(SHORT) {
            Admit::Admitted(l) => l,
            other => panic!("{other:?}"),
        };
        assert_eq!(b.thread_share(), 4);
        assert_eq!(adm.load(), (2, 0));
        // Third request queues and times out.
        assert!(matches!(adm.admit(SHORT), Admit::Timeout(_)));
        // With a waiter parked, a fourth would overflow the queue.
        let adm2 = adm.clone();
        let (tx, rx) = mpsc::channel();
        let waiter = thread::spawn(move || {
            tx.send(()).unwrap();
            adm2.admit(Duration::from_secs(5))
        });
        rx.recv().unwrap();
        // Give the waiter time to park.
        while adm.load().1 == 0 {
            thread::yield_now();
        }
        assert!(matches!(adm.admit(SHORT), Admit::QueueFull(_)));
        // Releasing a lease admits the parked waiter.
        drop(a);
        match waiter.join().unwrap() {
            Admit::Admitted(lease) => assert_eq!(adm.load(), (2, 0), "{}", lease.thread_share()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn thread_share_splits_the_budget_and_never_hits_zero() {
        // Static per-slot shares: concurrently held shares sum to exactly
        // the budget at full load, never past it.
        let adm = AdmissionControl::new(4, 0, 8);
        let leases: Vec<Lease> = (0..4)
            .map(|_| match adm.admit(SHORT) {
                Admit::Admitted(l) => l,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(
            leases.iter().map(Lease::thread_share).collect::<Vec<_>>(),
            vec![2, 2, 2, 2]
        );
        assert_eq!(leases.iter().map(Lease::thread_share).sum::<usize>(), 8);
        let adm = AdmissionControl::new(4, 0, 1);
        let l = match adm.admit(SHORT) {
            Admit::Admitted(l) => l,
            other => panic!("{other:?}"),
        };
        assert_eq!(l.thread_share(), 1);
    }

    #[test]
    fn zero_queue_depth_sheds_immediately() {
        let adm = AdmissionControl::new(1, 0, 2);
        let _hold = adm.admit(SHORT);
        let start = Instant::now();
        assert!(matches!(
            adm.admit(Duration::from_secs(5)),
            Admit::QueueFull(_)
        ));
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn drain_rejects_new_work_and_wakes_waiters() {
        let adm = AdmissionControl::new(1, 4, 2);
        let hold = match adm.admit(SHORT) {
            Admit::Admitted(l) => l,
            other => panic!("{other:?}"),
        };
        let adm2 = adm.clone();
        let waiter = thread::spawn(move || adm2.admit(Duration::from_secs(30)));
        while adm.load().1 == 0 {
            thread::yield_now();
        }
        adm.drain();
        assert!(matches!(waiter.join().unwrap(), Admit::Draining));
        assert!(matches!(adm.admit(SHORT), Admit::Draining));
        assert!(adm.is_draining());
        // await_idle returns once the in-flight lease is dropped.
        let adm3 = adm.clone();
        let idle = thread::spawn(move || adm3.await_idle());
        drop(hold);
        idle.join().unwrap();
        assert_eq!(adm.load(), (0, 0));
    }

    #[test]
    fn retry_after_hint_tracks_load() {
        let adm = AdmissionControl::new(2, 2, 2);
        assert_eq!(adm.retry_after_hint(), 1);
        let _a = adm.admit(SHORT);
        let _b = adm.admit(SHORT);
        assert_eq!(adm.retry_after_hint(), 2);
    }
}
