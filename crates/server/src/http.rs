//! A small HTTP/1.1 layer over `std::io` streams.
//!
//! Only what the wire protocol needs: request parsing with `Content-Length`
//! bodies, fixed-length responses, and chunked transfer encoding for the
//! answer stream. Generic over `Read`/`Write` so the protocol tests can run
//! against in-memory buffers; the server hands it `TcpStream`s with read and
//! write timeouts already armed (a slow client surfaces here as an I/O
//! error, never as a hung worker).

use std::io::{self, BufRead, BufReader, Read, Write};

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Request target (path + optional query), e.g. `/query`.
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed. Each variant maps to the 4xx the
/// connection handler answers with before closing.
#[derive(Debug)]
pub enum ParseError {
    /// The peer closed the connection before sending a request line. Not an
    /// error worth answering — the handler just closes its side.
    ConnectionClosed,
    /// Malformed request line or header syntax.
    Malformed(String),
    /// The declared body exceeds the server's limit.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The server's limit.
        limit: usize,
    },
    /// Socket-level failure (including read timeouts from slow clients).
    Io(io::Error),
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads one request from `reader`. `max_body` bounds the accepted
/// `Content-Length`.
///
/// # Errors
/// See [`ParseError`].
pub fn read_request<R: Read>(
    reader: &mut BufReader<R>,
    max_body: usize,
) -> Result<Request, ParseError> {
    let line = read_line(reader)?;
    let line = match line {
        None => return Err(ParseError::ConnectionClosed),
        Some(l) if l.is_empty() => return Err(ParseError::Malformed("empty request line".into())),
        Some(l) => l,
    };
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing request target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!(
            "unsupported version {version}"
        )));
    }

    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let line = read_line(reader)?
            .ok_or_else(|| ParseError::Malformed("connection closed mid-headers".into()))?;
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ParseError::Malformed("request head too large".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Malformed(format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(ParseError::Malformed(
            "chunked request bodies are not supported".into(),
        ));
    }
    let length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ParseError::Malformed(format!("bad content-length `{v}`")))?,
    };
    if length > max_body {
        return Err(ParseError::BodyTooLarge {
            declared: length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    Ok(Request { body, ..request })
}

/// Reads a CRLF- (or bare-LF-) terminated line, without the terminator.
/// `Ok(None)` means EOF before any byte.
fn read_line<R: Read>(reader: &mut BufReader<R>) -> Result<Option<String>, ParseError> {
    let mut buf = Vec::new();
    let n = reader
        .by_ref()
        .take(MAX_HEAD_BYTES as u64 + 2)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    } else if buf.len() >= MAX_HEAD_BYTES {
        return Err(ParseError::Malformed("header line too long".into()));
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| ParseError::Malformed("non-UTF-8 header".into()))
}

/// The reason phrase for the status codes the protocol uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        499 => "Client Closed Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        507 => "Insufficient Storage",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response. `extra_headers` are emitted
/// verbatim after the standard ones.
///
/// # Errors
/// Propagates socket errors (including write timeouts).
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    write_response_with_type(w, status, "application/json", extra_headers, body)
}

/// [`write_response`] with an explicit `Content-Type` (the metrics page is
/// Prometheus text, not JSON).
///
/// # Errors
/// Propagates socket errors (including write timeouts).
pub fn write_response_with_type<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// A chunked-transfer response body: the answer stream. Construction writes
/// the response head; [`chunk`](Self::chunk) writes one chunk per call;
/// [`finish`](Self::finish) terminates the stream.
pub struct ChunkedWriter<'a, W: Write> {
    w: &'a mut W,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Starts a 200 chunked response with NDJSON content.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn start(w: &'a mut W, extra_headers: &[(&str, String)]) -> io::Result<Self> {
        write!(
            w,
            "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\n"
        )?;
        for (name, value) in extra_headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        Ok(ChunkedWriter { w })
    }

    /// Writes one chunk (one NDJSON line, terminator included by the caller).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        Ok(())
    }

    /// Terminates the chunked stream and flushes.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn finish(self) -> io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse("POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn parses_a_get_without_body_and_bare_lf() {
        let req = parse("GET /health HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/health");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(parse(""), Err(ParseError::ConnectionClosed)));
        assert!(matches!(parse("\r\n\r\n"), Err(ParseError::Malformed(_))));
        assert!(matches!(
            parse("GET\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn body_limit_is_enforced() {
        match parse("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n") {
            Err(ParseError::BodyTooLarge { declared, limit }) => {
                assert_eq!(declared, 9999);
                assert_eq!(limit, 1024);
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(ParseError::Io(_))
        ));
    }

    #[test]
    fn writes_fixed_and_chunked_responses() {
        let mut out = Vec::new();
        write_response(&mut out, 429, &[("Retry-After", "2".into())], b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        let mut cw = ChunkedWriter::start(&mut out, &[]).unwrap();
        cw.chunk(b"hello\n").unwrap();
        cw.chunk(b"").unwrap();
        cw.chunk(b"world\n").unwrap();
        cw.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("6\r\nhello\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }

    #[test]
    fn reason_phrases_cover_the_protocol_statuses() {
        for status in [
            200, 201, 400, 404, 405, 409, 413, 422, 429, 499, 500, 503, 504, 507,
        ] {
            assert_ne!(reason(status), "Unknown", "{status}");
        }
        assert_eq!(reason(599), "Unknown");
    }
}
