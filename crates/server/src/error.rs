//! Typed wire errors: the full library error taxonomy mapped to stable
//! machine-readable codes and HTTP statuses.
//!
//! Every error response has the shape
//!
//! ```json
//! {"error":{"code":"UNSAFE_QUERY","status":422,"message":"…","detail":{…}}}
//! ```
//!
//! `code` is the stable contract clients dispatch on; `message` is the
//! library error's display form (human-readable, *not* stable); `detail`
//! carries the typed payload of the originating variant — the blocking
//! attribute pair of an unsafe query, the stage and budget arithmetic of a
//! governed interruption — so nothing is stringly over the wire.

use sprout::{PlanError, SproutError};

use crate::json::Json;

/// A response-ready error: status, stable code, and a structured detail
/// object.
#[derive(Debug, Clone)]
pub struct WireError {
    /// HTTP status.
    pub status: u16,
    /// Stable machine-readable code.
    pub code: &'static str,
    /// Human-readable description (display form of the source error).
    pub message: String,
    /// Typed payload of the originating error variant.
    pub detail: Json,
    /// `Retry-After` hint in seconds (shedding responses only).
    pub retry_after: Option<u64>,
}

impl WireError {
    /// A server-layer error with no structured detail.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> WireError {
        WireError {
            status,
            code,
            message: message.into(),
            detail: Json::Null,
            retry_after: None,
        }
    }

    /// Attaches a detail object.
    pub fn with_detail(mut self, detail: Json) -> WireError {
        self.detail = detail;
        self
    }

    /// Attaches a `Retry-After` hint.
    pub fn with_retry_after(mut self, seconds: u64) -> WireError {
        self.retry_after = Some(seconds);
        self
    }

    /// The JSON response body.
    pub fn body(&self) -> Json {
        Json::Object(vec![(
            "error".to_string(),
            Json::Object(vec![
                ("code".to_string(), Json::str(self.code)),
                ("status".to_string(), Json::Int(self.status as i64)),
                ("message".to_string(), Json::str(&self.message)),
                ("detail".to_string(), self.detail.clone()),
            ]),
        )])
    }
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Maps a governed interruption to its wire form. `DeadlineExceeded` carries
/// a `partial_bounds` slot: `null` when the deadline fired before any
/// refinement produced brackets (a deadline *during* refinement never errors
/// at all — the anytime evaluator degrades to its best bounds and the
/// request succeeds).
pub fn from_sprout_error(e: &SproutError) -> WireError {
    let stage = Json::str(e.stage().to_string());
    match e {
        SproutError::Cancelled { .. } => {
            WireError::new(499, "CANCELLED", e.to_string()).with_detail(obj(vec![("stage", stage)]))
        }
        SproutError::DeadlineExceeded {
            elapsed, deadline, ..
        } => WireError::new(504, "DEADLINE_EXCEEDED", e.to_string()).with_detail(obj(vec![
            ("stage", stage),
            ("elapsed_ms", Json::Int(elapsed.as_millis() as i64)),
            ("deadline_ms", Json::Int(deadline.as_millis() as i64)),
            ("partial_bounds", Json::Null),
        ])),
        SproutError::MemoryBudgetExceeded {
            requested,
            used,
            budget,
            ..
        } => WireError::new(507, "MEMORY_BUDGET_EXCEEDED", e.to_string()).with_detail(obj(vec![
            ("stage", stage),
            ("requested", Json::Int(*requested as i64)),
            ("used", Json::Int(*used as i64)),
            ("budget", Json::Int(*budget as i64)),
        ])),
        SproutError::WorkerPanic { item, .. } => {
            // The panic payload is deliberately not echoed to clients.
            WireError::new(500, "WORKER_PANIC", "a worker panicked and was isolated").with_detail(
                obj(vec![("stage", stage), ("item", Json::Int(*item as i64))]),
            )
        }
        SproutError::Failed { message, .. } => WireError::new(500, "INTERNAL", message.clone())
            .with_detail(obj(vec![("stage", stage)])),
    }
}

/// Maps the full [`PlanError`] taxonomy (including the nested query, exec,
/// confidence, storage and governed variants) to its wire form.
pub fn from_plan_error(e: &PlanError) -> WireError {
    use sprout::PlanError as P;
    match e {
        P::UnsafeQuery {
            query,
            attr_a,
            attr_b,
            table,
        } => WireError::new(422, "UNSAFE_QUERY", e.to_string()).with_detail(obj(vec![
            ("attr_a", Json::str(attr_a)),
            ("attr_b", Json::str(attr_b)),
            ("table", Json::str(table)),
            ("query", Json::str(query)),
        ])),
        P::MystiqRuntimeError(q) => WireError::new(500, "MYSTIQ_RUNTIME", e.to_string())
            .with_detail(obj(vec![("query", Json::str(q))])),
        P::Query(q) => from_query_error(q),
        P::Exec(x) => from_exec_error(x),
        P::Conf(c) => from_conf_error(c),
        P::Storage(s) => from_storage_error(s),
        P::Governed(g) => from_sprout_error(g),
    }
}

/// Maps a static query-analysis error.
pub fn from_query_error(e: &sprout::QueryError) -> WireError {
    use sprout::QueryError as Q;
    match e {
        Q::SelfJoin(r) => WireError::new(400, "SELF_JOIN", e.to_string())
            .with_detail(obj(vec![("relation", Json::str(r))])),
        Q::UnknownHeadAttribute(a) => WireError::new(400, "UNKNOWN_HEAD_ATTRIBUTE", e.to_string())
            .with_detail(obj(vec![("attribute", Json::str(a))])),
        Q::UnknownPredicateAttribute {
            relation,
            attribute,
        } => WireError::new(400, "UNKNOWN_PREDICATE_ATTRIBUTE", e.to_string()).with_detail(obj(
            vec![
                ("relation", Json::str(relation)),
                ("attribute", Json::str(attribute)),
            ],
        )),
        Q::UnknownRelation(r) => WireError::new(400, "UNKNOWN_QUERY_RELATION", e.to_string())
            .with_detail(obj(vec![("relation", Json::str(r))])),
        Q::NotHierarchical { witness } => WireError::new(422, "NOT_HIERARCHICAL", e.to_string())
            .with_detail(obj(vec![("witness", Json::str(witness))])),
        Q::EmptyQuery => WireError::new(400, "EMPTY_QUERY", e.to_string()),
    }
}

/// Maps an execution-substrate error.
pub fn from_exec_error(e: &sprout::ExecError) -> WireError {
    use sprout::ExecError as X;
    match e {
        X::UnknownColumn(c) => WireError::new(400, "UNKNOWN_COLUMN", e.to_string())
            .with_detail(obj(vec![("column", Json::str(c))])),
        X::UnknownRelation(r) => WireError::new(400, "UNKNOWN_LINEAGE_RELATION", e.to_string())
            .with_detail(obj(vec![("relation", Json::str(r))])),
        X::DuplicateRelation(r) => WireError::new(400, "DUPLICATE_RELATION", e.to_string())
            .with_detail(obj(vec![("relation", Json::str(r))])),
        X::Storage(s) => from_storage_error(s),
        X::Governed(g) => from_sprout_error(g),
    }
}

/// Maps a confidence-computation error.
pub fn from_conf_error(e: &sprout::ConfError) -> WireError {
    use sprout::ConfError as C;
    match e {
        C::MissingLineage(r) => WireError::new(500, "MISSING_LINEAGE", e.to_string())
            .with_detail(obj(vec![("relation", Json::str(r))])),
        C::NotOneScan(s) => WireError::new(500, "NOT_ONE_SCAN", e.to_string())
            .with_detail(obj(vec![("signature", Json::str(s))])),
        C::NotReadOnce(s) => WireError::new(422, "NOT_READ_ONCE", e.to_string())
            .with_detail(obj(vec![("lineage", Json::str(s))])),
        C::Query(q) => from_query_error(q),
        C::Exec(x) => from_exec_error(x),
        C::Governed(g) => from_sprout_error(g),
    }
}

/// Maps a storage error (table registration and catalog lookups).
pub fn from_storage_error(e: &sprout::StorageError) -> WireError {
    use sprout::StorageError as S;
    match e {
        S::UnknownTable(t) => WireError::new(404, "UNKNOWN_TABLE", e.to_string())
            .with_detail(obj(vec![("table", Json::str(t))])),
        S::DuplicateTable(t) => WireError::new(409, "DUPLICATE_TABLE", e.to_string())
            .with_detail(obj(vec![("table", Json::str(t))])),
        S::InvalidProbability(p) => WireError::new(400, "INVALID_PROBABILITY", e.to_string())
            .with_detail(obj(vec![("probability", Json::Float(*p))])),
        S::DuplicateColumn(c) => WireError::new(400, "DUPLICATE_COLUMN", e.to_string())
            .with_detail(obj(vec![("column", Json::str(c))])),
        S::UnknownColumn(c) => WireError::new(400, "UNKNOWN_COLUMN", e.to_string())
            .with_detail(obj(vec![("column", Json::str(c))])),
        S::ArityMismatch { expected, actual } => {
            WireError::new(400, "ARITY_MISMATCH", e.to_string()).with_detail(obj(vec![
                ("expected", Json::Int(*expected as i64)),
                ("actual", Json::Int(*actual as i64)),
            ]))
        }
        S::TypeMismatch { column, value } => WireError::new(400, "TYPE_MISMATCH", e.to_string())
            .with_detail(obj(vec![
                ("column", Json::str(column)),
                ("value", Json::str(value)),
            ])),
        // The remaining variants cannot arise from wire input; they map to a
        // generic storage code so the taxonomy stays total.
        other => WireError::new(400, "STORAGE", other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout::Stage;
    use std::time::Duration;

    #[test]
    fn unsafe_query_maps_to_422_with_the_blocking_pair() {
        let e = PlanError::UnsafeQuery {
            query: "Q'".into(),
            attr_a: "ckey".into(),
            attr_b: "okey".into(),
            table: "Ord".into(),
        };
        let w = from_plan_error(&e);
        assert_eq!((w.status, w.code), (422, "UNSAFE_QUERY"));
        assert_eq!(w.detail.get("attr_a").unwrap().as_str(), Some("ckey"));
        assert_eq!(w.detail.get("attr_b").unwrap().as_str(), Some("okey"));
        assert_eq!(w.detail.get("table").unwrap().as_str(), Some("Ord"));
        let body = w.body().render();
        assert!(body.contains("\"code\":\"UNSAFE_QUERY\"") && body.contains("\"status\":422"));
    }

    #[test]
    fn governed_interruptions_map_to_their_statuses() {
        let cases: Vec<(SproutError, u16, &str)> = vec![
            (
                SproutError::Cancelled { stage: Stage::Scan },
                499,
                "CANCELLED",
            ),
            (
                SproutError::DeadlineExceeded {
                    stage: Stage::Confidence,
                    elapsed: Duration::from_millis(12),
                    deadline: Duration::from_millis(10),
                },
                504,
                "DEADLINE_EXCEEDED",
            ),
            (
                SproutError::MemoryBudgetExceeded {
                    stage: Stage::Join,
                    requested: 64,
                    used: 128,
                    budget: 100,
                },
                507,
                "MEMORY_BUDGET_EXCEEDED",
            ),
            (
                SproutError::WorkerPanic {
                    stage: Stage::Scan,
                    item: 3,
                    message: "secret".into(),
                },
                500,
                "WORKER_PANIC",
            ),
            (
                SproutError::Failed {
                    stage: Stage::Plan,
                    message: "boom".into(),
                },
                500,
                "INTERNAL",
            ),
        ];
        for (e, status, code) in cases {
            let w = from_sprout_error(&e);
            assert_eq!((w.status, w.code), (status, code), "{e:?}");
            assert!(!w.detail.get("stage").unwrap().as_str().unwrap().is_empty());
        }
        // Deadline carries the partial-bounds slot; panic hides the payload.
        let w = from_sprout_error(&SproutError::DeadlineExceeded {
            stage: Stage::Scan,
            elapsed: Duration::from_millis(2),
            deadline: Duration::from_millis(1),
        });
        assert!(w.detail.get("partial_bounds").unwrap().is_null());
        let w = from_sprout_error(&SproutError::WorkerPanic {
            stage: Stage::Scan,
            item: 0,
            message: "secret".into(),
        });
        assert!(!w.body().render().contains("secret"));
    }

    #[test]
    fn nested_taxonomies_stay_typed() {
        use sprout::QueryError;
        use sprout::StorageError;
        let w = from_plan_error(&PlanError::Storage(StorageError::UnknownTable("T".into())));
        assert_eq!((w.status, w.code), (404, "UNKNOWN_TABLE"));
        let w = from_plan_error(&PlanError::Query(QueryError::UnknownPredicateAttribute {
            relation: "R".into(),
            attribute: "x".into(),
        }));
        assert_eq!((w.status, w.code), (400, "UNKNOWN_PREDICATE_ATTRIBUTE"));
        assert_eq!(w.detail.get("relation").unwrap().as_str(), Some("R"));
        let w = from_storage_error(&StorageError::DuplicateTable("T".into()));
        assert_eq!((w.status, w.code), (409, "DUPLICATE_TABLE"));
        let w = from_storage_error(&StorageError::InvalidProbability(1.5));
        assert_eq!((w.status, w.code), (400, "INVALID_PROBABILITY"));
        let w = from_plan_error(&PlanError::Governed(SproutError::Cancelled {
            stage: Stage::Confidence,
        }));
        assert_eq!(w.status, 499);
    }
}
