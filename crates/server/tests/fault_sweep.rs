//! PR 9 deterministic fault-injection sweep over the server sites (compiled
//! only with `--features fault-inject`).
//!
//! For every site in [`pdb_fault::sites::SERVER`] × action (panic / cancel /
//! budget / slow) × worker-pool size {1, 8}, a one-shot fault is installed
//! and a query submitted. The properties:
//!
//! * the client always receives a *well-formed* HTTP response with a typed
//!   JSON error body (panic → `500 WORKER_PANIC`, cancel → `499 CANCELLED`,
//!   budget → `507 MEMORY_BUDGET_EXCEEDED`) — or, for `slow`, a delayed but
//!   complete answer stream;
//! * the server survives: an immediate re-run of the same query on the same
//!   server succeeds and is bitwise-identical to the library baseline (the
//!   shared pool is reusable, nothing is poisoned);
//! * graceful shutdown drains: a query held open by a `slow` fault completes
//!   its full answer stream even though shutdown began mid-execution.
//!
//! The installed fault plan is process-global state, so the tests in this
//! file serialize on [`FAULT_LOCK`].
#![cfg(feature = "fault-inject")]

mod common;

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serializes every test that touches the global fault plan.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

use common::{one_shot, query_body, table_body};
use pdb_exec::fixtures;
use pdb_fault::{clear, install, sites, FaultPlan};
use pdb_query::cq::intro_query_q;
use sprout::{PlanKind, SproutDb};
use sprout_server::{ServerConfig, SproutServer};

fn config(worker_threads: usize) -> ServerConfig {
    ServerConfig {
        worker_threads,
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

#[test]
fn server_fault_sweep_is_isolated_reusable_and_deterministic() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    clear();
    let baseline = {
        let db = SproutDb::from_catalog(fixtures::fig1_catalog_with_keys());
        common::expected_lines(&db.query(&intro_query_q(), PlanKind::Lazy).unwrap())
    };
    let query = query_body(&intro_query_q(), &[]);

    for pool in [1usize, 8] {
        for site in sites::SERVER {
            for action in ["panic", "cancel", "budget", "slow"] {
                // A fresh server per case keeps the fault indices exact:
                // table registration uses one connection (conn 0), the
                // faulted query the next (conn 1, request 0 on it).
                let server =
                    SproutServer::bind(SproutDb::new(), "127.0.0.1:0", config(pool)).expect("bind");
                let mut setup = common::Client::connect(server.addr());
                for (name, table, keys) in [
                    ("Cust", fixtures::fig1_cust(), vec!["ckey"]),
                    ("Ord", fixtures::fig1_ord(), vec!["okey"]),
                    ("Item", fixtures::fig1_item(), vec![]),
                ] {
                    let keys: Vec<&[&str]> = if keys.is_empty() {
                        vec![]
                    } else {
                        vec![&keys[..]]
                    };
                    let resp =
                        setup.request("POST", "/tables", &table_body(name, &table, &keys, &[]));
                    assert_eq!(resp.status, 201, "{site} {action}: {}", resp.body);
                }

                let index = if *site == sites::SERVER_ACCEPT { 1 } else { 0 };
                let spec = if action == "slow" {
                    format!("{action}@{site}:{index}:150")
                } else {
                    format!("{action}@{site}:{index}")
                };
                install(FaultPlan::parse(&spec).expect("valid spec"));

                let label = format!("{spec} pool={pool}");
                let resp = one_shot(server.addr(), "POST", "/query", &query);
                match action {
                    "slow" => {
                        // Delayed, not broken: the full stream arrives.
                        assert_eq!(resp.status, 200, "{label}: {}", resp.body);
                        assert_eq!(resp.lines(), baseline, "{label}");
                    }
                    "panic" => {
                        assert_eq!(resp.status, 500, "{label}: {}", resp.body);
                        assert_eq!(resp.error_code(), "WORKER_PANIC", "{label}");
                        // The panic payload is not echoed to the client.
                        assert!(!resp.body.contains("injected"), "{label}: {}", resp.body);
                    }
                    "cancel" => {
                        assert_eq!(resp.status, 499, "{label}: {}", resp.body);
                        assert_eq!(resp.error_code(), "CANCELLED", "{label}");
                    }
                    "budget" => {
                        assert_eq!(resp.status, 507, "{label}: {}", resp.body);
                        assert_eq!(resp.error_code(), "MEMORY_BUDGET_EXCEEDED", "{label}");
                    }
                    _ => unreachable!(),
                }

                // One-shot: the immediate re-run (twice, to prove the pool
                // is reusable and deterministic) matches the baseline
                // bitwise.
                for round in 0..2 {
                    let resp = one_shot(server.addr(), "POST", "/query", &query);
                    assert_eq!(resp.status, 200, "{label} round {round}: {}", resp.body);
                    assert_eq!(resp.lines(), baseline, "{label} round {round}");
                }
                server.shutdown();
            }
        }
    }
    clear();
}

#[test]
fn shutdown_drains_a_query_held_mid_execution() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    clear();
    let db = SproutDb::from_catalog(fixtures::fig1_catalog_with_keys());
    let server = SproutServer::bind(db, "127.0.0.1:0", config(4)).expect("bind");
    let addr = server.addr();

    let baseline = {
        let db = SproutDb::from_catalog(fixtures::fig1_catalog_with_keys());
        common::expected_lines(&db.query(&intro_query_q(), PlanKind::Lazy).unwrap())
    };

    // Hold the first query's execution stage open for 400 ms.
    install(FaultPlan::parse(&format!("slow@{}:0:400", sites::SERVER_EXEC)).unwrap());

    let in_flight = std::thread::spawn(move || {
        let start = Instant::now();
        let resp = one_shot(addr, "POST", "/query", &query_body(&intro_query_q(), &[]));
        (resp, start.elapsed())
    });
    // Let the in-flight query reach the slow fault, then shut down.
    std::thread::sleep(Duration::from_millis(120));
    let shutdown_started = Instant::now();
    server.shutdown();
    let drained_in = shutdown_started.elapsed();

    let (resp, elapsed) = in_flight.join().expect("client thread");
    // The admitted query completed its full answer stream despite the
    // shutdown starting mid-execution...
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.lines(), baseline);
    assert!(elapsed >= Duration::from_millis(400), "{elapsed:?}");
    // ...and shutdown genuinely waited for it (drain, not abort).
    assert!(drained_in >= Duration::from_millis(200), "{drained_in:?}");
    clear();
}
