//! End-to-end observability tests over loopback TCP: `"explain": "plan"`
//! plan documents, `"explain": "analyze"` NDJSON trailers (and that tracing
//! leaves the answer lines bitwise-identical), the Prometheus page at
//! `GET /metrics`, the `GET /debug/queries` ring, the enriched `/health`
//! document, and the admission-state detail on shed responses.

mod common;

use std::time::Duration;

use common::{one_shot, query_body, table_body, Client};
use pdb_exec::fixtures;
use pdb_query::cq::{intro_query_q, intro_query_q_prime};
use sprout::SproutDb;
use sprout_server::{Json, ServerConfig, SproutServer};

fn test_config() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

/// Registers the Fig. 1 tables (with the key declarations) over the wire.
fn register_fig1(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr);
    for (name, table, keys) in [
        ("Cust", fixtures::fig1_cust(), vec!["ckey"]),
        ("Ord", fixtures::fig1_ord(), vec!["okey"]),
        ("Item", fixtures::fig1_item(), vec![]),
    ] {
        let keys: Vec<&[&str]> = if keys.is_empty() {
            vec![]
        } else {
            vec![&keys[..]]
        };
        let resp = client.request("POST", "/tables", &table_body(name, &table, &keys, &[]));
        assert_eq!(resp.status, 201, "{}: {}", name, resp.body);
    }
}

/// Extracts the first sample value of a Prometheus family from the page.
fn prom_value(page: &str, sample: &str) -> f64 {
    page.lines()
        .find_map(|l| {
            l.strip_prefix(sample)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("no sample {sample:?} in page:\n{page}"))
}

#[test]
fn explain_plan_describes_the_plan_without_executing() {
    let server = SproutServer::bind(SproutDb::new(), "127.0.0.1:0", test_config()).unwrap();
    let addr = server.addr();
    register_fig1(addr);

    let resp = one_shot(
        addr,
        "POST",
        "/query",
        &query_body(&intro_query_q(), &[("explain", "\"plan\"")]),
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    let plan = resp.json();
    assert_eq!(plan.get("kind").and_then(Json::as_str), Some("lazy"));
    assert_eq!(plan.get("path").and_then(Json::as_str), Some("safe"));
    assert_eq!(plan.get("tractable"), Some(&Json::Bool(true)));
    assert_eq!(
        plan.get("signature").and_then(Json::as_str),
        Some("(Cust (Ord Item*)*)*")
    );
    let order = plan.get("join_order").unwrap().as_array().unwrap();
    assert_eq!(order.len(), 3, "{}", resp.body);
    let scans = plan.get("scan_details").unwrap().as_array().unwrap();
    assert_eq!(scans.len(), 3);
    for scan in scans {
        assert_eq!(scan.get("backing").and_then(Json::as_str), Some("row"));
        assert!(scan.get("rows").and_then(Json::as_i64).unwrap() > 0);
    }

    // The plan pass never executes: nothing reaches the debug ring and no
    // engine rows are counted.
    let debug = one_shot(addr, "GET", "/debug/queries", "").json();
    assert!(debug.get("recent").unwrap().as_array().unwrap().is_empty());
    let page = one_shot(addr, "GET", "/metrics", "");
    assert_eq!(
        prom_value(&page.body, "sprout_engine_rows_scanned_total "),
        0.0
    );

    // An unexplainable query reports the same typed error explain-free
    // execution would.
    server.shutdown();
    let keyless = SproutServer::bind(
        SproutDb::from_catalog(fixtures::fig1_catalog()),
        "127.0.0.1:0",
        test_config(),
    )
    .unwrap();
    let resp = one_shot(
        keyless.addr(),
        "POST",
        "/query",
        &query_body(&intro_query_q_prime(), &[("explain", "\"plan\"")]),
    );
    assert_eq!(
        (resp.status, resp.error_code().as_str()),
        (422, "UNSAFE_QUERY")
    );
    keyless.shutdown();
}

#[test]
fn explain_analyze_appends_a_trailer_and_leaves_answers_identical() {
    let server = SproutServer::bind(SproutDb::new(), "127.0.0.1:0", test_config()).unwrap();
    let addr = server.addr();
    register_fig1(addr);

    let plain = one_shot(addr, "POST", "/query", &query_body(&intro_query_q(), &[]));
    assert_eq!(plain.status, 200, "{}", plain.body);

    let resp = one_shot(
        addr,
        "POST",
        "/query",
        &query_body(&intro_query_q(), &[("explain", "\"analyze\"")]),
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    let lines = resp.lines();
    // Header + answers are bitwise what the untraced run streams; only one
    // trailer line is appended.
    assert_eq!(lines.len(), plain.lines().len() + 1, "{}", resp.body);
    assert_eq!(lines[..lines.len() - 1], plain.lines()[..]);

    let trailer = Json::parse(lines.last().unwrap()).expect("trailer is JSON");
    let analyze = trailer.get("analyze").expect("trailer has analyze key");
    // The executed plan document rides along.
    let plan = analyze.get("plan").unwrap();
    assert_eq!(plan.get("path").and_then(Json::as_str), Some("safe"));
    // The counter object has the full stable schema (zeros included) and a
    // real scan count.
    let counters = analyze.get("counters").unwrap();
    assert!(counters.get("rows_scanned").and_then(Json::as_i64).unwrap() > 0);
    assert!(counters.get("chunks_scanned").is_some(), "{}", resp.body);
    // The span tree is rooted at planning and timed.
    let spans = analyze.get("spans").unwrap().as_array().unwrap();
    assert!(!spans.is_empty(), "{}", resp.body);
    assert_eq!(spans[0].get("site").and_then(Json::as_str), Some("plan"));
    assert!(spans[0].get("elapsed_us").and_then(Json::as_i64).is_some());
    assert!(!spans[0]
        .get("children")
        .unwrap()
        .as_array()
        .unwrap()
        .is_empty());
    server.shutdown();
}

#[test]
fn metrics_page_and_debug_ring_reflect_served_queries() {
    let server = SproutServer::bind(SproutDb::new(), "127.0.0.1:0", test_config()).unwrap();
    let addr = server.addr();
    register_fig1(addr);

    let resp = one_shot(addr, "POST", "/query", &query_body(&intro_query_q(), &[]));
    assert_eq!(resp.status, 200, "{}", resp.body);
    // And one admitted query that fails inside the engine.
    let ghost = sprout::ConjunctiveQuery::build(&[("Ghost", &["a"])], &["a"], vec![]).unwrap();
    let resp = one_shot(addr, "POST", "/query", &query_body(&ghost, &[]));
    assert_eq!(resp.status, 404, "{}", resp.body);

    let page = one_shot(addr, "GET", "/metrics", "");
    assert_eq!(page.status, 200);
    assert!(
        page.header("Content-Type")
            .unwrap()
            .starts_with("text/plain"),
        "{:?}",
        page.headers
    );
    let text = &page.body;
    assert!(prom_value(text, "sprout_uptime_seconds ") >= 0.0);
    assert_eq!(prom_value(text, "sprout_active_queries "), 0.0);
    assert_eq!(prom_value(text, "sprout_catalog_tables "), 3.0);
    assert!(prom_value(text, "sprout_table_rows{table=\"Cust\"} ") > 0.0);
    assert_eq!(prom_value(text, "sprout_queries_ok_total "), 1.0);
    assert_eq!(prom_value(text, "sprout_queries_failed_total "), 1.0);
    assert_eq!(prom_value(text, "sprout_exec_seconds_count "), 2.0);
    // The deterministic engine totals merged in from the finished query.
    assert!(prom_value(text, "sprout_engine_rows_scanned_total ") > 0.0);
    assert!(prom_value(text, "sprout_engine_answer_rows_total ") >= 1.0);

    let debug = one_shot(addr, "GET", "/debug/queries", "");
    assert_eq!(debug.status, 200);
    let body = debug.json();
    assert!(body
        .get("in_flight")
        .unwrap()
        .as_array()
        .unwrap()
        .is_empty());
    let recent = body.get("recent").unwrap().as_array().unwrap();
    assert_eq!(recent.len(), 2, "{}", debug.body);
    // Ring entries are written after the answer stream flushes, so the two
    // queries may land in either order — find them by outcome.
    let by_status = |status: &str| {
        recent
            .iter()
            .find(|q| q.get("status").and_then(Json::as_str) == Some(status))
            .unwrap_or_else(|| panic!("no {status:?} entry in {}", debug.body))
    };
    let ok = by_status("ok");
    assert_eq!(ok.get("answers").and_then(Json::as_i64), Some(1));
    assert!(ok.get("rows_scanned").and_then(Json::as_i64).unwrap() > 0);
    assert!(ok
        .get("query")
        .and_then(Json::as_str)
        .unwrap()
        .contains("Cust"));
    by_status("UNKNOWN_TABLE");
    server.shutdown();
}

#[test]
fn health_reports_version_uptime_and_admission_state() {
    let server = SproutServer::bind(SproutDb::new(), "127.0.0.1:0", test_config()).unwrap();
    let addr = server.addr();
    register_fig1(addr);

    let health = one_shot(addr, "GET", "/health", "").json();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        health.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(health.get("uptime_s").and_then(Json::as_f64).unwrap() >= 0.0);
    assert_eq!(health.get("tables").and_then(Json::as_i64), Some(3));
    assert_eq!(health.get("active").and_then(Json::as_i64), Some(0));
    assert_eq!(health.get("queued").and_then(Json::as_i64), Some(0));
    assert!(health.get("slots").and_then(Json::as_i64).unwrap() >= 1);
    assert!(health.get("queue_depth").and_then(Json::as_i64).is_some());
    server.shutdown();
}

#[test]
fn shed_responses_carry_the_observed_admission_state() {
    // One slot, no queue: concurrent clients force QUEUE_FULL sheds whose
    // detail reports the state the scheduler actually observed.
    let config = ServerConfig {
        slots: 1,
        queue_depth: 0,
        ..test_config()
    };
    let server = SproutServer::bind(SproutDb::new(), "127.0.0.1:0", config).unwrap();
    let addr = server.addr();
    register_fig1(addr);

    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut sheds = Vec::new();
                for _ in 0..10 {
                    let resp = one_shot(addr, "POST", "/query", &query_body(&intro_query_q(), &[]));
                    match resp.status {
                        200 => {}
                        429 => sheds.push(resp),
                        other => panic!("unexpected status {other}: {}", resp.body),
                    }
                }
                sheds
            })
        })
        .collect();
    let sheds: Vec<_> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    assert!(
        !sheds.is_empty(),
        "80 requests against 1 slot / 0 queue produced no shed"
    );
    for resp in &sheds {
        assert_eq!(resp.error_code(), "QUEUE_FULL", "{}", resp.body);
        assert!(resp.header("Retry-After").is_some());
        let body = resp.json();
        let detail = body.get("error").and_then(|e| e.get("detail")).unwrap();
        assert_eq!(detail.get("slots").and_then(Json::as_i64), Some(1));
        assert_eq!(detail.get("queue_depth").and_then(Json::as_i64), Some(0));
        assert!(detail.get("active").and_then(Json::as_i64).unwrap() >= 1);
        assert!(detail.get("waited_ms").and_then(Json::as_i64).is_some());
    }

    // The sheds landed under their code on the metrics page.
    let page = one_shot(addr, "GET", "/metrics", "");
    assert!(
        prom_value(&page.body, "sprout_sheds_total{code=\"QUEUE_FULL\"} ") >= sheds.len() as f64
    );
    server.shutdown();
}
