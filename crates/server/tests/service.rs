//! End-to-end service tests over loopback TCP: wire round trips that are
//! bitwise-identical to the library, the typed error taxonomy, graceful
//! degradation under deadlines and frontier caps, drain semantics, and
//! keep-alive connections. (Fault-injection sweeps live in `fault_sweep.rs`
//! behind the `fault-inject` feature.)

mod common;

use std::time::Duration;

use common::{one_shot, query_body, table_body, Client};
use pdb_exec::fixtures;
use pdb_query::cq::{intro_query_q, intro_query_q_prime};
use sprout::{ApproxPolicy, PlanKind, QueryOptions, SproutDb};
use sprout_server::{Json, ServerConfig, SproutServer};

fn test_config() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

/// Registers the Fig. 1 tables (with the key declarations) over the wire.
fn register_fig1(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr);
    for (name, table, keys) in [
        ("Cust", fixtures::fig1_cust(), vec!["ckey"]),
        ("Ord", fixtures::fig1_ord(), vec!["okey"]),
        ("Item", fixtures::fig1_item(), vec![]),
    ] {
        let keys: Vec<&[&str]> = if keys.is_empty() {
            vec![]
        } else {
            vec![&keys[..]]
        };
        let resp = client.request("POST", "/tables", &table_body(name, &table, &keys, &[]));
        assert_eq!(resp.status, 201, "{}: {}", name, resp.body);
    }
}

#[test]
fn wire_answers_are_bitwise_identical_to_the_library_at_every_thread_count() {
    // The library baseline, rendered through the same codec.
    let db = SproutDb::from_catalog(fixtures::fig1_catalog_with_keys());
    let report = db.query(&intro_query_q(), PlanKind::Lazy).unwrap();
    let expected = common::expected_lines(&report);

    for worker_threads in [1, 8] {
        let config = ServerConfig {
            worker_threads,
            ..test_config()
        };
        let server = SproutServer::bind(SproutDb::new(), "127.0.0.1:0", config).unwrap();
        register_fig1(server.addr());

        for kind in ["\"lazy\"", "\"eager\"", "\"mystiq\""] {
            let resp = one_shot(
                server.addr(),
                "POST",
                "/query",
                &query_body(&intro_query_q(), &[("kind", kind)]),
            );
            assert_eq!(resp.status, 200, "{kind}: {}", resp.body);
            let lines = resp.lines();
            // Confidences (and their exact bits) are plan-independent; only
            // the header's kind differs.
            assert_eq!(lines.len(), expected.len(), "{kind}");
            if kind == "\"lazy\"" {
                assert_eq!(lines, expected, "threads={worker_threads}");
            } else {
                assert_eq!(lines[1..], expected[1..], "{kind}");
            }
        }
        server.shutdown();
    }
}

#[test]
fn typed_errors_cover_the_taxonomy() {
    let server = SproutServer::bind(SproutDb::new(), "127.0.0.1:0", test_config()).unwrap();
    let addr = server.addr();
    register_fig1(addr);

    // Unknown endpoint and method.
    assert_eq!(one_shot(addr, "GET", "/nope", "").status, 404);
    assert_eq!(one_shot(addr, "GET", "/query", "").status, 405);

    // Malformed JSON.
    let resp = one_shot(addr, "POST", "/query", "{nope");
    assert_eq!(
        (resp.status, resp.error_code().as_str()),
        (400, "INVALID_JSON")
    );

    // A pathologically nested body is a parse error, not a stack overflow:
    // 100k levels would otherwise abort the whole process (catch_unwind
    // cannot contain stack exhaustion). The taxonomy cases below continuing
    // to pass on the same server proves it survived the attack body.
    let resp = one_shot(addr, "POST", "/query", &"[".repeat(100_000));
    assert_eq!(
        (resp.status, resp.error_code().as_str()),
        (400, "INVALID_JSON")
    );

    // Registration is atomic: a table spec with a dangling key column is
    // rejected without committing the table, so the same name registers
    // cleanly afterwards (no half-configured leftover, no 409).
    let resp = one_shot(
        addr,
        "POST",
        "/tables",
        r#"{"name":"Atomic","schema":[["a","int"]],"keys":[["nope"]],
            "rows":[{"values":[1],"var":0,"prob":0.5}]}"#,
    );
    assert_eq!(
        (resp.status, resp.error_code().as_str()),
        (400, "UNKNOWN_COLUMN")
    );
    let resp = one_shot(
        addr,
        "POST",
        "/tables",
        r#"{"name":"Atomic","schema":[["a","int"]],"keys":[["a"]],
            "rows":[{"values":[1],"var":0,"prob":0.5}]}"#,
    );
    assert_eq!(resp.status, 201, "{}", resp.body);

    // Duplicate table registration.
    let resp = one_shot(
        addr,
        "POST",
        "/tables",
        &table_body("Cust", &fixtures::fig1_cust(), &[], &[]),
    );
    assert_eq!(
        (resp.status, resp.error_code().as_str()),
        (409, "DUPLICATE_TABLE")
    );

    // Invalid probability is a typed storage error.
    let resp = one_shot(
        addr,
        "POST",
        "/tables",
        r#"{"name":"Bad","schema":[["a","int"]],"rows":[{"values":[1],"var":0,"prob":2.0}]}"#,
    );
    assert_eq!(
        (resp.status, resp.error_code().as_str()),
        (400, "INVALID_PROBABILITY")
    );

    // Query over a table that was never registered.
    let q = sprout::ConjunctiveQuery::build(&[("Ghost", &["a"])], &["a"], vec![]).unwrap();
    let resp = one_shot(addr, "POST", "/query", &query_body(&q, &[]));
    assert_eq!(
        (resp.status, resp.error_code().as_str()),
        (404, "UNKNOWN_TABLE")
    );

    // Self-join rejected with the query taxonomy (validated at parse time).
    let resp = one_shot(
        addr,
        "POST",
        "/query",
        r#"{"query":{"relations":[{"name":"Cust","attrs":["ckey"]},{"name":"Cust","attrs":["ckey"]}],"head":["ckey"]}}"#,
    );
    assert_eq!(
        (resp.status, resp.error_code().as_str()),
        (400, "SELF_JOIN")
    );

    server.shutdown();
}

#[test]
fn unsafe_queries_return_422_with_the_blocking_attribute_pair() {
    // No keys declared: Q' has no safe plan.
    let server = SproutServer::bind(
        SproutDb::from_catalog(fixtures::fig1_catalog()),
        "127.0.0.1:0",
        test_config(),
    )
    .unwrap();
    let resp = one_shot(
        server.addr(),
        "POST",
        "/query",
        &query_body(&intro_query_q_prime(), &[]),
    );
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert_eq!(resp.error_code(), "UNSAFE_QUERY");
    let detail = resp.json();
    let detail = detail.get("error").and_then(|e| e.get("detail")).unwrap();
    assert!(
        detail.get("attr_a").is_some() && detail.get("attr_b").is_some(),
        "{}",
        resp.body
    );
    server.shutdown();
}

#[test]
fn bounds_policy_degrades_instead_of_erroring() {
    let db = SproutDb::from_catalog(fixtures::fig1_catalog());
    let server = SproutServer::bind(db, "127.0.0.1:0", test_config()).unwrap();
    let addr = server.addr();

    // Full-precision bounds: exact answers (read-once factorization).
    let resp = one_shot(
        addr,
        "POST",
        "/query",
        &query_body(
            &intro_query_q_prime(),
            &[("policy", r#"{"bounds":{"eps":1e-9}}"#)],
        ),
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    let header = Json::parse(&resp.lines()[0]).unwrap();
    assert_eq!(header.get("answers").and_then(Json::as_i64), Some(1));
    let line = Json::parse(&resp.lines()[1]).unwrap();
    let lo = line.get("lo").and_then(Json::as_f64).unwrap();
    let hi = line.get("hi").and_then(Json::as_f64).unwrap();
    assert!(
        lo <= 0.0028 + 1e-12 && 0.0028 <= hi + 1e-12,
        "{}",
        resp.body
    );

    // A zero-byte frontier cap degrades deterministically to wider (but
    // still valid) bounds — and matches the library bitwise.
    let body = query_body(
        &intro_query_q_prime(),
        &[
            ("policy", r#"{"bounds":{"eps":0.0}}"#),
            ("frontier_budget", "0"),
        ],
    );
    let resp = one_shot(addr, "POST", "/query", &body);
    assert_eq!(resp.status, 200, "{}", resp.body);
    let lib = SproutDb::from_catalog(fixtures::fig1_catalog())
        .query_with_options(
            &intro_query_q_prime(),
            &QueryOptions {
                policy: Some(ApproxPolicy::Bounds { eps: 0.0 }),
                frontier_budget: Some(Some(0)),
                ..QueryOptions::default()
            },
        )
        .unwrap();
    assert_eq!(resp.lines(), common::expected_lines(&lib));

    server.shutdown();
}

#[test]
fn an_impossible_deadline_is_a_504_with_a_partial_bounds_slot() {
    let db = SproutDb::from_catalog(fixtures::fig1_catalog_with_keys());
    let server = SproutServer::bind(db, "127.0.0.1:0", test_config()).unwrap();
    let resp = one_shot(
        server.addr(),
        "POST",
        "/query",
        &query_body(&intro_query_q(), &[("deadline_ms", "0")]),
    );
    assert_eq!(resp.status, 504, "{}", resp.body);
    assert_eq!(resp.error_code(), "DEADLINE_EXCEEDED");
    let body = resp.json();
    let detail = body.get("error").and_then(|e| e.get("detail")).unwrap();
    assert!(detail.get("elapsed_ms").is_some(), "{}", resp.body);
    // The slot is always present: null when the deadline struck before any
    // bounds were computed.
    assert!(detail.get("partial_bounds").is_some(), "{}", resp.body);
    server.shutdown();
}

#[test]
fn draining_rejects_new_work_and_health_reports_it() {
    let db = SproutDb::from_catalog(fixtures::fig1_catalog_with_keys());
    let server = SproutServer::bind(db, "127.0.0.1:0", test_config()).unwrap();
    let addr = server.addr();

    let health = one_shot(addr, "GET", "/health", "");
    assert_eq!(health.status, 200);
    assert_eq!(
        health.json().get("status").and_then(Json::as_str),
        Some("ok")
    );

    server.drain();

    let resp = one_shot(addr, "POST", "/query", &query_body(&intro_query_q(), &[]));
    assert_eq!((resp.status, resp.error_code().as_str()), (503, "DRAINING"));
    assert!(resp.header("Retry-After").is_some());
    let resp = one_shot(
        addr,
        "POST",
        "/tables",
        &table_body("Late", &fixtures::fig1_cust(), &[], &[]),
    );
    assert_eq!((resp.status, resp.error_code().as_str()), (503, "DRAINING"));

    let health = one_shot(addr, "GET", "/health", "");
    assert_eq!(
        health.json().get("status").and_then(Json::as_str),
        Some("draining")
    );

    server.shutdown();
    // The listener is gone after shutdown.
    assert!(std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
}

#[test]
fn keep_alive_serves_many_requests_per_connection() {
    let db = SproutDb::from_catalog(fixtures::fig1_catalog_with_keys());
    let server = SproutServer::bind(db, "127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.addr());
    let mut first = None;
    for _ in 0..5 {
        let resp = client.request("POST", "/query", &query_body(&intro_query_q(), &[]));
        assert_eq!(resp.status, 200);
        let lines = resp.lines();
        match &first {
            None => first = Some(lines),
            Some(f) => assert_eq!(&lines, f),
        }
        // Errors in between do not poison the connection.
        let resp = client.request("POST", "/query", "{}");
        assert_eq!(resp.status, 400);
    }
    server.shutdown();
}

#[test]
fn concurrent_clients_all_get_bitwise_identical_answers() {
    let db = SproutDb::from_catalog(fixtures::fig1_catalog_with_keys());
    let config = ServerConfig {
        slots: 2,
        queue_depth: 16,
        queue_timeout: Duration::from_secs(10),
        worker_threads: 8,
        ..test_config()
    };
    let server = SproutServer::bind(db, "127.0.0.1:0", config).unwrap();
    let addr = server.addr();

    let expected = {
        let db = SproutDb::from_catalog(fixtures::fig1_catalog_with_keys());
        common::expected_lines(&db.query(&intro_query_q(), PlanKind::Lazy).unwrap())
    };

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let resp = one_shot(addr, "POST", "/query", &query_body(&intro_query_q(), &[]));
                assert_eq!(resp.status, 200, "{}", resp.body);
                assert_eq!(resp.lines(), expected);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
}
