//! A minimal blocking HTTP/1.1 test client (keep-alive, fixed-length and
//! chunked bodies) plus helpers that serialize engine fixtures into wire
//! bodies.
//!
//! Shared by several test binaries, each of which uses a different subset.
#![allow(dead_code)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use sprout::{CompareOp, ConjunctiveQuery, DataType, PlanReport, ProbTable, Value};
use sprout_server::{proto, Json};

pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Response {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    pub fn json(&self) -> Json {
        Json::parse(&self.body).expect("response body is JSON")
    }

    /// The `error.code` of an error body.
    pub fn error_code(&self) -> String {
        self.json()
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("no error code in {}", self.body))
            .to_string()
    }

    /// NDJSON lines of a streamed answer body.
    pub fn lines(&self) -> Vec<String> {
        self.body.lines().map(str::to_string).collect()
    }
}

impl Client {
    pub fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client {
            writer: stream,
            reader,
        }
    }

    pub fn request(&mut self, method: &str, path: &str, body: &str) -> Response {
        self.try_request(method, path, body).expect("request")
    }

    pub fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<Response> {
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(request.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                headers.push((k.trim().to_string(), v.trim().to_string()));
            }
        }
        let chunked = headers
            .iter()
            .any(|(k, v)| k.eq_ignore_ascii_case("transfer-encoding") && v == "chunked");
        let mut body = Vec::new();
        if chunked {
            loop {
                let size_line = self.read_line()?;
                let size = usize::from_str_radix(size_line.trim(), 16)
                    .unwrap_or_else(|_| panic!("bad chunk size {size_line:?}"));
                let mut chunk = vec![0u8; size + 2];
                self.reader.read_exact(&mut chunk)?;
                if size == 0 {
                    break;
                }
                body.extend_from_slice(&chunk[..size]);
            }
        } else {
            let length: usize = headers
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
                .and_then(|(_, v)| v.parse().ok())
                .unwrap_or(0);
            body = vec![0u8; length];
            self.reader.read_exact(&mut body)?;
        }
        Ok(Response {
            status,
            headers,
            body: String::from_utf8(body).expect("UTF-8 body"),
        })
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }
}

/// One-shot request on a fresh connection.
pub fn one_shot(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    Client::connect(addr).request(method, path, body)
}

fn type_name(t: DataType) -> &'static str {
    match t {
        DataType::Int => "int",
        DataType::Float => "float",
        DataType::Str => "str",
        DataType::Date => "date",
        DataType::Bool => "bool",
    }
}

fn value_json(v: &Value) -> Json {
    proto::value_to_json(v)
}

/// Serializes a fixture table into a `POST /tables` body.
pub fn table_body(
    name: &str,
    table: &ProbTable,
    keys: &[&[&str]],
    fds: &[(&[&str], &[&str])],
) -> String {
    let schema = Json::Array(
        table
            .schema()
            .columns()
            .iter()
            .map(|c| {
                Json::Array(vec![
                    Json::Str(c.name.clone()),
                    Json::Str(type_name(c.data_type).to_string()),
                ])
            })
            .collect(),
    );
    let rows = Json::Array(
        (0..table.len())
            .map(|i| {
                let (tuple, var, prob) = table.triple(i);
                Json::Object(vec![
                    (
                        "values".to_string(),
                        Json::Array(tuple.values().iter().map(value_json).collect()),
                    ),
                    ("var".to_string(), Json::Int(var.0 as i64)),
                    ("prob".to_string(), Json::Float(prob)),
                ])
            })
            .collect(),
    );
    let keys = Json::Array(
        keys.iter()
            .map(|k| Json::Array(k.iter().map(|a| Json::Str(a.to_string())).collect()))
            .collect(),
    );
    let fds = Json::Array(
        fds.iter()
            .map(|(lhs, rhs)| {
                Json::Object(vec![
                    (
                        "lhs".to_string(),
                        Json::Array(lhs.iter().map(|a| Json::Str(a.to_string())).collect()),
                    ),
                    (
                        "rhs".to_string(),
                        Json::Array(rhs.iter().map(|a| Json::Str(a.to_string())).collect()),
                    ),
                ])
            })
            .collect(),
    );
    Json::Object(vec![
        ("name".to_string(), Json::Str(name.to_string())),
        ("schema".to_string(), schema),
        ("rows".to_string(), rows),
        ("keys".to_string(), keys),
        ("fds".to_string(), fds),
    ])
    .render()
}

fn op_str(op: CompareOp) -> &'static str {
    match op {
        CompareOp::Eq => "=",
        CompareOp::Ne => "!=",
        CompareOp::Lt => "<",
        CompareOp::Le => "<=",
        CompareOp::Gt => ">",
        CompareOp::Ge => ">=",
        CompareOp::In => "in",
    }
}

/// Serializes a query into the `"query"` object of a `POST /query` body.
pub fn query_json(q: &ConjunctiveQuery) -> Json {
    let relations = Json::Array(
        q.relations
            .iter()
            .map(|r| {
                Json::Object(vec![
                    ("name".to_string(), Json::Str(r.name.clone())),
                    (
                        "attrs".to_string(),
                        Json::Array(r.attributes.iter().map(|a| Json::Str(a.clone())).collect()),
                    ),
                ])
            })
            .collect(),
    );
    let head = Json::Array(q.head.iter().map(|h| Json::Str(h.clone())).collect());
    let predicates = Json::Array(
        q.predicates
            .iter()
            .map(|p| {
                let mut fields = vec![
                    ("relation".to_string(), Json::Str(p.relation.clone())),
                    ("attribute".to_string(), Json::Str(p.attribute.clone())),
                    ("op".to_string(), Json::Str(op_str(p.op).to_string())),
                ];
                if p.op == CompareOp::In {
                    let mut values = vec![value_json(&p.constant)];
                    values.extend(p.alternatives.iter().map(value_json));
                    fields.push(("values".to_string(), Json::Array(values)));
                } else {
                    fields.push(("value".to_string(), value_json(&p.constant)));
                }
                Json::Object(fields)
            })
            .collect(),
    );
    Json::Object(vec![
        ("relations".to_string(), relations),
        ("head".to_string(), head),
        ("predicates".to_string(), predicates),
    ])
}

/// A `POST /query` body with optional extra top-level fields (already
/// rendered JSON values).
pub fn query_body(q: &ConjunctiveQuery, extra: &[(&str, &str)]) -> String {
    let mut body = format!("{{\"query\":{}", query_json(q).render());
    for (k, v) in extra {
        body.push_str(&format!(",\"{k}\":{v}"));
    }
    body.push('}');
    body
}

/// The expected NDJSON answer lines for a library-side report.
pub fn expected_lines(report: &PlanReport) -> Vec<String> {
    proto::answer_lines(report)
}
