//! Lazy plans: compute the answer tuples under the optimizer's preferred join
//! order and run the confidence-computation operator once, at the very top of
//! the plan (Fig. 7 (c)).

use std::sync::Arc;

use pdb_conf::{ConfidenceOperator, ConfidenceResult, SplitPolicy, Strategy};
use pdb_exec::{evaluate_join_order_ctx, Annotated};
use pdb_govern::{ExecContext, QueryGovernor, QueryObs};
use pdb_par::Pool;
use pdb_query::reduct::FdReduct;
use pdb_query::{ConjunctiveQuery, FdSet, Signature};
use pdb_storage::Catalog;

use crate::error::{PlanError, PlanResult};
use crate::join_order::greedy_join_order;

/// A lazy plan: a join order plus the top-level confidence operator.
#[derive(Debug, Clone)]
pub struct LazyPlan {
    query: ConjunctiveQuery,
    join_order: Vec<String>,
    signature: Signature,
    pool: Pool,
    split_policy: SplitPolicy,
    governor: Option<QueryGovernor>,
    obs: Option<Arc<QueryObs>>,
}

impl LazyPlan {
    /// Builds a lazy plan for `query` using the functional dependencies in
    /// `fds` and the catalog's statistics for join ordering.
    ///
    /// # Errors
    /// Fails with [`PlanError::UnsafeQuery`] (naming the blocking attribute
    /// pair) if the FD-reduct is not hierarchical.
    pub fn build(query: &ConjunctiveQuery, fds: &FdSet, catalog: &Catalog) -> PlanResult<LazyPlan> {
        let reduct = FdReduct::compute(query, fds);
        let status = reduct.hierarchy();
        if !status.is_hierarchical() {
            return Err(PlanError::unsafe_query(query, &status));
        }
        let signature = reduct.signature()?;
        let join_order = greedy_join_order(query, catalog)?;
        Ok(LazyPlan {
            query: query.clone(),
            join_order,
            signature,
            pool: Pool::from_env(),
            split_policy: SplitPolicy::default(),
            governor: None,
            obs: None,
        })
    }

    /// Attaches a per-query observability collector: the pipeline and the
    /// confidence operator tally deterministic counters into it (and record
    /// spans when the collector has tracing enabled). Pure telemetry — the
    /// answer stays bitwise-identical.
    pub fn with_obs(mut self, obs: Arc<QueryObs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Attaches a [`QueryGovernor`]: the relational pipeline and the
    /// confidence operator observe its cancellation token, deadline, and
    /// memory budget at every morsel/chunk/bag checkpoint, returning
    /// [`PlanError::Governed`] when interrupted. The happy path is
    /// bitwise-identical to the ungoverned one.
    pub fn with_governor(mut self, governor: QueryGovernor) -> Self {
        self.governor = Some(governor);
        self
    }

    /// Sets the worker pool the plan fans out on — the whole relational
    /// pipeline (scans, filters, projections, joins) *and* the top-level
    /// confidence operator (the default is [`Pool::from_env`]). Results are
    /// bitwise-identical at every pool size.
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Sets the intra-bag [`SplitPolicy`] of the top-level confidence
    /// operator: the row threshold above which one bag of duplicate answer
    /// tuples is split at root-variable boundaries across the pool
    /// (Boolean / low-distinct answers are one huge bag). Confidences are
    /// bitwise-identical for every policy.
    pub fn with_split_policy(mut self, policy: SplitPolicy) -> Self {
        self.split_policy = policy;
        self
    }

    /// The join order the plan uses.
    pub fn join_order(&self) -> &[String] {
        &self.join_order
    }

    /// The signature of the top-level confidence operator.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// Number of scans the confidence operator needs (Proposition V.10).
    pub fn scans(&self) -> usize {
        self.signature.scan_count()
    }

    /// Computes the lineage-annotated answer tuples (duplicates included).
    /// The relational pipeline fans out on the plan's pool; the answer is
    /// bitwise-identical at every pool size.
    ///
    /// # Errors
    /// Fails on execution errors (missing tables/columns).
    pub fn answer_tuples(&self, catalog: &Catalog) -> PlanResult<Annotated> {
        let ctx =
            ExecContext::from_governor(self.governor.as_ref()).with_obs_opt(self.obs.as_ref());
        Ok(evaluate_join_order_ctx(
            &self.query,
            catalog,
            &self.join_order,
            &self.pool,
            &ctx,
        )?)
    }

    /// Executes the plan: answer tuples first, then one confidence
    /// computation at the top.
    ///
    /// # Errors
    /// Fails on execution or confidence-computation errors.
    pub fn execute(&self, catalog: &Catalog) -> PlanResult<ConfidenceResult> {
        let answer = self.answer_tuples(catalog)?;
        self.confidences(&answer)
    }

    /// Runs only the confidence-computation stage on a precomputed answer.
    ///
    /// # Errors
    /// Fails on confidence-computation errors.
    pub fn confidences(&self, answer: &Annotated) -> PlanResult<ConfidenceResult> {
        let mut operator = ConfidenceOperator::with_pool(self.signature.clone(), self.pool)
            .with_split_policy(self.split_policy);
        if let Some(gov) = &self.governor {
            operator = operator.with_governor(gov.clone());
        }
        if let Some(obs) = &self.obs {
            operator = operator.with_obs(obs.clone());
        }
        operator
            .compute(answer, Strategy::Auto)
            .map_err(PlanError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_exec::fixtures::{fig1_catalog, fig1_catalog_with_keys};
    use pdb_query::cq::{intro_query_q, intro_query_q_prime};
    use pdb_storage::tuple;

    #[test]
    fn lazy_plan_on_intro_query_matches_the_paper() {
        let catalog = fig1_catalog_with_keys();
        let fds = FdSet::from_catalog_decls(&catalog.fds());
        let plan = LazyPlan::build(&intro_query_q(), &fds, &catalog).unwrap();
        // Better (lazy) join order: the selective Cust first (Section I).
        assert_eq!(plan.join_order()[0], "Cust");
        assert_eq!(plan.scans(), 1);
        let result = plan.execute(&catalog).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].0, tuple!["1995-01-10"]);
        assert!((result[0].1 - 0.0028).abs() < 1e-12);
    }

    #[test]
    fn lazy_plan_without_fds_uses_more_scans_but_is_exact() {
        let catalog = fig1_catalog();
        let plan = LazyPlan::build(&intro_query_q(), &FdSet::empty(), &catalog).unwrap();
        assert!(plan.scans() >= 2);
        let result = plan.execute(&catalog).unwrap();
        assert!((result[0].1 - 0.0028).abs() < 1e-12);
    }

    #[test]
    fn q_prime_is_intractable_without_fds_but_planable_with_them() {
        let catalog = fig1_catalog_with_keys();
        let q = intro_query_q_prime();
        match LazyPlan::build(&q, &FdSet::empty(), &catalog) {
            Err(PlanError::UnsafeQuery { attr_a, attr_b, .. }) => {
                assert!(!attr_a.is_empty() && !attr_b.is_empty());
            }
            other => panic!("expected UnsafeQuery, got {other:?}"),
        }
        let fds = FdSet::from_catalog_decls(&catalog.fds());
        let plan = LazyPlan::build(&q, &fds, &catalog).unwrap();
        let result = plan.execute(&catalog).unwrap();
        // Q and Q' have the same answer under the FD (Section I).
        assert!((result[0].1 - 0.0028).abs() < 1e-12);
    }
}
