//! # sprout-plan
//!
//! Query plans for confidence computation: the lazy, eager and hybrid plans
//! of Section V.B (Fig. 7) and the MystiQ-style safe plans of Fig. 2 that the
//! paper compares against.
//!
//! * [`stats`] — per-table statistics and selectivity estimation.
//! * [`join_order`] — greedy cost-based join ordering (what the host engine's
//!   optimizer does for SPROUT) and the query-tree-driven join order that
//!   safe plans are restricted to.
//! * [`placement`] — the operator-placement rules of Section V.B: restricting
//!   a signature to the tables of a subplan and splitting propagation steps
//!   that are not yet valid (Example V.6).
//! * [`lazy`] — lazy plans: compute the answer tuples under the best join
//!   order, sort once, run the confidence operator at the very end.
//! * [`eager`] — eager plans: aggregate after each table and after each join,
//!   following the query tree (Fig. 7 (a)).
//! * [`hybrid`] — hybrid plans: push the per-table aggregations of a chosen
//!   subset of relations below the joins and finish lazily (Fig. 7 (b)).
//! * [`fallback`] — fallback plans for unsafe queries: lazy joins, then
//!   per-tuple read-once factorization (exact) or anytime dissociation
//!   bounds, under an [`ApproxPolicy`].
//! * [`safe`] — MystiQ plans: extensional safe plans without variable
//!   columns, with either the stable or the log-space probability
//!   aggregation (Section VII).
//! * [`planner`] — a small facade choosing and executing plans, reporting the
//!   timings the benchmark harness consumes.
//! * [`explain`] — the planner's decision procedure as data (EXPLAIN),
//!   without executing.

pub mod eager;
pub mod error;
pub mod explain;
pub mod fallback;
pub mod hybrid;
pub mod join_order;
pub mod lazy;
pub mod placement;
pub mod planner;
pub mod safe;
pub mod stats;

pub use error::{PlanError, PlanResult};
pub use explain::{ExplainPath, ExplainScan, PlanExplain};
pub use fallback::FallbackPlan;
pub use pdb_conf::{ApproxPolicy, ApproxResult, ConfMethod, TupleConfidence};
pub use pdb_govern::{
    Counter, ExecContext, GovernorBuilder, QueryGovernor, QueryObs, SpanGuard, SpanNode,
    SproutError, Stage,
};
pub use pdb_par::Pool;
pub use planner::{PlanKind, PlanReport, Planner};
