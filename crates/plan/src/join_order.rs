//! Join ordering.
//!
//! Lazy plans are free to use whatever join order the optimizer likes best
//! (that is the point of the paper); safe plans are not. This module provides
//! both: a greedy cost-based order seeded by the most selective relation, and
//! the query-tree-driven order that eager/safe plans follow (children of a
//! node are joined before the node's result joins its siblings, i.e. the
//! Fig. 2 shape where `Ord ⋈ Item` is computed before `Cust` is brought in).

use std::collections::BTreeSet;

use pdb_query::{ConjunctiveQuery, QueryTree};
use pdb_storage::Catalog;

use crate::error::PlanResult;
use crate::stats::Statistics;

/// A greedy, selectivity-driven join order: start from the relation with the
/// smallest filtered cardinality, then repeatedly add the connected relation
/// with the smallest estimated join result (falling back to the smallest
/// disconnected relation when no connected one exists).
///
/// # Errors
/// Fails if a referenced table is missing from the catalog.
pub fn greedy_join_order(query: &ConjunctiveQuery, catalog: &Catalog) -> PlanResult<Vec<String>> {
    let stats = Statistics::collect(query, catalog)?;
    let mut remaining: Vec<String> = query
        .relation_names()
        .into_iter()
        .map(|s| s.to_string())
        .collect();
    let mut order: Vec<String> = Vec::with_capacity(remaining.len());

    // Seed: the most selective relation; equal output estimates fall back
    // to the cheaper scan (the columnar zone statistics' chunk-distinct
    // hints estimate how many chunks an Eq/In probe actually reads).
    remaining.sort_by(|a, b| {
        stats
            .filtered_cardinality(query, a)
            .total_cmp(&stats.filtered_cardinality(query, b))
            .then_with(|| {
                stats
                    .scan_cost(query, a)
                    .total_cmp(&stats.scan_cost(query, b))
            })
    });
    let seed = remaining.remove(0);
    let mut current_card = stats.filtered_cardinality(query, &seed);
    order.push(seed);

    while !remaining.is_empty() {
        let connected: Vec<usize> = remaining
            .iter()
            .enumerate()
            .filter(|(_, r)| shares_attribute(query, &order, r))
            .map(|(i, _)| i)
            .collect();
        let candidates: Vec<usize> = if connected.is_empty() {
            (0..remaining.len()).collect()
        } else {
            connected
        };
        let best = candidates
            .into_iter()
            .min_by(|&a, &b| {
                let ca = stats.join_cardinality(query, &order, current_card, &remaining[a]);
                let cb = stats.join_cardinality(query, &order, current_card, &remaining[b]);
                ca.total_cmp(&cb)
            })
            .expect("remaining is non-empty");
        let next = remaining.remove(best);
        current_card = stats.join_cardinality(query, &order, current_card, &next);
        order.push(next);
    }
    Ok(order)
}

fn shares_attribute(query: &ConjunctiveQuery, chosen: &[String], candidate: &str) -> bool {
    let Some(cand) = query.relation(candidate) else {
        return false;
    };
    let cand_attrs: BTreeSet<&String> = cand.attributes.iter().collect();
    chosen.iter().any(|c| {
        query
            .relation(c)
            .map(|atom| atom.attributes.iter().any(|a| cand_attrs.contains(a)))
            .unwrap_or(false)
    })
}

/// The join order induced by a query tree: a post-order traversal in which
/// every subtree is fully joined before its result meets its siblings. This
/// is the restrictive order safe plans must use (Fig. 2: `Ord ⋈ Item` first,
/// `Cust` last when `Cust` is the first child).
pub fn tree_join_order(tree: &QueryTree) -> Vec<String> {
    match tree {
        QueryTree::Leaf { relation, .. } => vec![relation.clone()],
        QueryTree::Inner { children, .. } => {
            // Deeper subtrees first: MystiQ computes the nested (unselective)
            // joins before bringing in the selective single tables.
            let mut ordered: Vec<&QueryTree> = children.iter().collect();
            ordered.sort_by_key(|c| std::cmp::Reverse(c.depth()));
            ordered.iter().flat_map(|c| tree_join_order(c)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_exec::fixtures::fig1_catalog;
    use pdb_query::cq::intro_query_q;
    use pdb_query::reduct::FdReduct;
    use pdb_query::FdSet;

    #[test]
    fn greedy_order_starts_with_the_selective_customer() {
        let catalog = fig1_catalog();
        let q = intro_query_q();
        let order = greedy_join_order(&q, &catalog).unwrap();
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], "Cust");
        // All relations appear exactly once.
        let set: BTreeSet<&String> = order.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn greedy_order_handles_queries_without_predicates() {
        let catalog = fig1_catalog();
        let mut q = intro_query_q();
        q.predicates.clear();
        let order = greedy_join_order(&q, &catalog).unwrap();
        assert_eq!(order.len(), 3);
        // Smallest table first.
        assert_eq!(order[0], "Cust");
    }

    #[test]
    fn tree_order_joins_the_deep_subquery_first() {
        let q = intro_query_q();
        let reduct = FdReduct::compute(&q.boolean_version(), &FdSet::empty());
        let tree = reduct.tree().unwrap();
        let order = tree_join_order(&tree);
        // The Ord–Item subtree is deeper than the Cust leaf, so MystiQ joins
        // Ord and Item before Cust — the unselective join the paper calls out.
        assert_eq!(order.len(), 3);
        assert_eq!(order[2], "Cust");
        assert!(order[..2].contains(&"Ord".to_string()));
        assert!(order[..2].contains(&"Item".to_string()));
    }

    #[test]
    fn missing_tables_are_reported() {
        let catalog = pdb_storage::Catalog::new();
        let q = intro_query_q();
        assert!(greedy_join_order(&q, &catalog).is_err());
    }
}
