//! Hybrid plans: push part of the confidence computation below the joins and
//! finish lazily (Fig. 7 (b), Section VII experiment 2).
//!
//! The hybrid plans evaluated in the paper "first avoid eager aggregation on
//! large tables … and then push down aggregations between unselective joins".
//! This implementation supports exactly that shape: a configurable subset of
//! relations is aggregated immediately after its scan (`[R*]` pushed to the
//! leaf), the joins then run in the optimizer's order, and the remaining
//! confidence computation happens at the top with the correspondingly
//! simplified signature (each pushed `R*` replaced by the bare `R`).

use std::collections::BTreeSet;
use std::sync::Arc;

use pdb_conf::multi_scan::apply_pre_aggregation_ctx;
use pdb_conf::{ConfidenceOperator, ConfidenceResult, SplitPolicy, Strategy};
use pdb_exec::{ops, Annotated};
use pdb_govern::{ExecContext, QueryGovernor, QueryObs};
use pdb_par::Pool;
use pdb_query::reduct::FdReduct;
use pdb_query::{ConjunctiveQuery, FdSet, Signature};
use pdb_storage::Catalog;

use crate::error::{PlanError, PlanResult};
use crate::join_order::greedy_join_order;

/// A hybrid plan: per-table aggregation pushdown plus a lazy tail.
#[derive(Debug, Clone)]
pub struct HybridPlan {
    query: ConjunctiveQuery,
    join_order: Vec<String>,
    pushed: BTreeSet<String>,
    top_signature: Signature,
    pool: Pool,
    split_policy: SplitPolicy,
    governor: Option<QueryGovernor>,
    obs: Option<Arc<QueryObs>>,
}

impl HybridPlan {
    /// Builds a hybrid plan that pushes the aggregation of the given
    /// relations below the joins.
    ///
    /// # Errors
    /// Fails with [`PlanError::UnsafeQuery`] (naming the blocking attribute
    /// pair) if the FD-reduct is not hierarchical.
    pub fn build(
        query: &ConjunctiveQuery,
        fds: &FdSet,
        catalog: &Catalog,
        push_down: &[&str],
    ) -> PlanResult<HybridPlan> {
        let reduct = FdReduct::compute(query, fds);
        let status = reduct.hierarchy();
        if !status.is_hierarchical() {
            return Err(PlanError::unsafe_query(query, &status));
        }
        let signature = reduct.signature()?;
        let pushed: BTreeSet<String> = push_down
            .iter()
            .filter(|t| signature.contains_table(t))
            .map(|t| t.to_string())
            .collect();
        // After a relation has been aggregated at its leaf, its variable
        // column holds one representative per group: the top operator treats
        // it as unstarred.
        let top_signature = signature.reduce_starred_tables(&pushed);
        let join_order = greedy_join_order(query, catalog)?;
        Ok(HybridPlan {
            query: query.clone(),
            join_order,
            pushed,
            top_signature,
            pool: Pool::from_env(),
            split_policy: SplitPolicy::default(),
            governor: None,
            obs: None,
        })
    }

    /// Attaches a per-query observability collector: the pipeline, the
    /// pushed-down aggregations, and the top-level confidence operator tally
    /// deterministic counters into it. Pure telemetry — the answer stays
    /// bitwise-identical.
    pub fn with_obs(mut self, obs: Arc<QueryObs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Attaches a [`QueryGovernor`]: the relational pipeline, the pushed-down
    /// aggregations, and the top-level confidence operator observe its
    /// cancellation token, deadline, and memory budget at every
    /// morsel/chunk/bag checkpoint, returning [`PlanError::Governed`] when
    /// interrupted. The happy path is bitwise-identical to the ungoverned
    /// one.
    pub fn with_governor(mut self, governor: QueryGovernor) -> Self {
        self.governor = Some(governor);
        self
    }

    /// Sets the worker pool the whole plan fans out on — the relational
    /// pipeline, the pushed-down aggregations, and the top-level confidence
    /// operator (the default is [`Pool::from_env`]). Results are
    /// bitwise-identical at every pool size.
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Sets the intra-bag [`SplitPolicy`] applied both to the pushed-down
    /// leaf aggregations (a leaf whose rows collapse into few groups is one
    /// huge group) and to the top-level confidence operator. Results are
    /// bitwise-identical for every policy.
    pub fn with_split_policy(mut self, policy: SplitPolicy) -> Self {
        self.split_policy = policy;
        self
    }

    /// The relations whose aggregation is pushed below the joins.
    pub fn pushed_down(&self) -> &BTreeSet<String> {
        &self.pushed
    }

    /// The signature of the top-level operator after the pushdowns.
    pub fn top_signature(&self) -> &Signature {
        &self.top_signature
    }

    /// Executes the plan.
    ///
    /// # Errors
    /// Fails on execution or confidence-computation errors.
    pub fn execute(&self, catalog: &Catalog) -> PlanResult<ConfidenceResult> {
        let answer = self.answer_tuples(catalog)?;
        let mut operator = ConfidenceOperator::with_pool(self.top_signature.clone(), self.pool)
            .with_split_policy(self.split_policy);
        if let Some(gov) = &self.governor {
            operator = operator.with_governor(gov.clone());
        }
        if let Some(obs) = &self.obs {
            operator = operator.with_obs(obs.clone());
        }
        operator
            .compute(&answer, Strategy::Auto)
            .map_err(PlanError::from)
    }

    /// Evaluates the joins with the configured pushdowns, producing the
    /// (partially aggregated) annotated answer.
    ///
    /// # Errors
    /// Fails on execution errors.
    pub fn answer_tuples(&self, catalog: &Catalog) -> PlanResult<Annotated> {
        let ctx =
            ExecContext::from_governor(self.governor.as_ref()).with_obs_opt(self.obs.as_ref());
        let head: BTreeSet<String> = self.query.head_set();
        let join_attrs = self.query.join_attributes();
        let mut current: Option<Annotated> = None;

        for (step, rel_name) in self.join_order.iter().enumerate() {
            let atom = self.query.relation(rel_name).ok_or_else(|| {
                PlanError::Query(pdb_query::QueryError::UnknownRelation(rel_name.clone()))
            })?;
            let table = catalog.backing(rel_name)?;
            let keep: Vec<String> = atom
                .attributes
                .iter()
                .filter(|a| {
                    table.schema().contains(a)
                        && (head.contains(*a)
                            || join_attrs.contains(*a)
                            || self
                                .query
                                .predicates_for(rel_name)
                                .iter()
                                .any(|p| &p.attribute == *a))
                })
                .cloned()
                .collect();
            // One fused scan-filter-project per leaf, gated on the base
            // table's size; columnar backings take their zone-map fast
            // path. Results are identical either way.
            let mut scanned = ops::scan_filter_project_backing_ctx(
                &table,
                rel_name,
                &self.query.predicates_for(rel_name),
                &keep,
                &self.pool.for_items(table.len()),
                &ctx,
            )?;
            let post_scan: Vec<String> = scanned
                .schema()
                .names()
                .into_iter()
                .filter(|a| head.contains(*a) || join_attrs.contains(*a))
                .map(|s| s.to_string())
                .collect();
            scanned = ops::project_ctx(
                &scanned,
                &post_scan,
                &self.pool.for_items(scanned.len()),
                &ctx,
            )?;
            if self.pushed.contains(rel_name) {
                // The pushed-down `[R*]` operator: one row per distinct
                // projected tuple, carrying a representative variable and the
                // group's probability.
                let step_sig = Signature::star(Signature::table(rel_name.clone()));
                scanned = apply_pre_aggregation_ctx(
                    &scanned,
                    &step_sig,
                    &self.pool,
                    self.split_policy,
                    &ctx,
                )?;
            }

            current = Some(match current {
                None => scanned,
                Some(acc) => {
                    let join_pool = self.pool.for_items(acc.len().max(scanned.len()));
                    ops::natural_join_ctx(&acc, &scanned, &join_pool, &ctx)?
                }
            });
            if let Some(acc) = current.take() {
                let remaining: BTreeSet<&String> = self.join_order[step + 1..].iter().collect();
                let needed: Vec<String> = acc
                    .schema()
                    .names()
                    .into_iter()
                    .filter(|a| {
                        head.contains(*a)
                            || remaining.iter().any(|r| {
                                self.query
                                    .relation(r)
                                    .map(|atom| atom.has_attribute(a))
                                    .unwrap_or(false)
                            })
                    })
                    .map(|s| s.to_string())
                    .collect();
                current = Some(ops::project_ctx(
                    &acc,
                    &needed,
                    &self.pool.for_items(acc.len()),
                    &ctx,
                )?);
            }
        }
        let answer = current.expect("query has at least one relation");
        Ok(ops::project_ctx(
            &answer,
            &self.query.head,
            &self.pool.for_items(answer.len()),
            &ctx,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lazy::LazyPlan;
    use pdb_exec::fixtures::{fig1_catalog, fig1_catalog_with_keys};
    use pdb_query::cq::intro_query_q;
    use pdb_storage::tuple;

    #[test]
    fn hybrid_plan_with_item_pushdown_matches_the_paper_confidence() {
        let catalog = fig1_catalog_with_keys();
        let fds = FdSet::from_catalog_decls(&catalog.fds());
        let plan = HybridPlan::build(&intro_query_q(), &fds, &catalog, &["Item"]).unwrap();
        assert!(plan.pushed_down().contains("Item"));
        // Pushing Item's star below makes the top signature star-free on Item.
        assert_eq!(plan.top_signature().to_string(), "(Cust (Ord Item)*)*");
        let result = plan.execute(&catalog).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].0, tuple!["1995-01-10"]);
        assert!((result[0].1 - 0.0028).abs() < 1e-12);
    }

    #[test]
    fn hybrid_agrees_with_lazy_for_every_pushdown_choice() {
        let catalog = fig1_catalog();
        let mut q = intro_query_q();
        q.predicates.clear();
        let lazy = LazyPlan::build(&q, &FdSet::empty(), &catalog)
            .unwrap()
            .execute(&catalog)
            .unwrap();
        for push in [
            vec![],
            vec!["Item"],
            vec!["Ord"],
            vec!["Item", "Cust"],
            vec!["Item", "Ord", "Cust"],
        ] {
            let plan = HybridPlan::build(&q, &FdSet::empty(), &catalog, &push).unwrap();
            let result = plan.execute(&catalog).unwrap();
            assert_eq!(result.len(), lazy.len(), "pushdown {push:?}");
            for ((t1, p1), (t2, p2)) in result.iter().zip(lazy.iter()) {
                assert_eq!(t1, t2);
                assert!(
                    (p1 - p2).abs() < 1e-9,
                    "pushdown {push:?} tuple {t1}: {p1} vs {p2}"
                );
            }
        }
    }

    #[test]
    fn unknown_pushdown_tables_are_ignored() {
        let catalog = fig1_catalog();
        let plan =
            HybridPlan::build(&intro_query_q(), &FdSet::empty(), &catalog, &["Nation"]).unwrap();
        assert!(plan.pushed_down().is_empty());
    }
}
