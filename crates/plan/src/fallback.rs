//! Fallback plans for unsafe queries: when no safe plan exists (the
//! FD-reduct is not hierarchical), SPROUT can still compute the lineage of
//! every answer tuple and attack the per-tuple DNFs directly. The fallback
//! plan joins under the optimizer's preferred order exactly like a lazy plan,
//! then replaces the signature-driven confidence operator with the intensional
//! evaluator chain: read-once factorization first (exact when it succeeds),
//! anytime dissociation bounds otherwise.
//!
//! Which chain is allowed is the caller's [`ApproxPolicy`]:
//! [`ApproxPolicy::Exact`] admits only the read-once path and errors on
//! tuples whose lineage is provably not read-once, while
//! [`ApproxPolicy::Bounds`] refines `[lo, hi]` brackets until they are
//! tighter than `eps` (or the governor's deadline fires, which returns the
//! best bounds so far instead of an error).

use std::sync::Arc;

use pdb_conf::{anytime_confidences_ctx, AnytimeConfig, ApproxPolicy, ApproxResult};
use pdb_exec::{evaluate_join_order_ctx, Annotated};
use pdb_govern::{ExecContext, QueryGovernor, QueryObs};
use pdb_par::Pool;
use pdb_query::ConjunctiveQuery;
use pdb_storage::Catalog;

use crate::error::PlanResult;
use crate::join_order::greedy_join_order;

/// A fallback plan: the lazy join pipeline with an intensional (read-once /
/// anytime-bounds) confidence stage on top, for queries with no safe plan.
#[derive(Debug, Clone)]
pub struct FallbackPlan {
    query: ConjunctiveQuery,
    join_order: Vec<String>,
    config: AnytimeConfig,
    pool: Pool,
    governor: Option<QueryGovernor>,
    obs: Option<Arc<QueryObs>>,
}

impl FallbackPlan {
    /// Builds a fallback plan for `query`. No hierarchy check is performed —
    /// the plan is valid for *every* conjunctive query; it is simply slower
    /// (and possibly approximate) where a safe plan would have been exact.
    ///
    /// # Errors
    /// Fails if the join order cannot be derived (unknown relations).
    pub fn build(
        query: &ConjunctiveQuery,
        catalog: &Catalog,
        policy: ApproxPolicy,
    ) -> PlanResult<FallbackPlan> {
        let join_order = greedy_join_order(query, catalog)?;
        Ok(FallbackPlan {
            query: query.clone(),
            join_order,
            config: AnytimeConfig::new(policy),
            pool: Pool::from_env(),
            governor: None,
            obs: None,
        })
    }

    /// Attaches a per-query observability collector: the pipeline and the
    /// intensional confidence stage tally deterministic counters (including
    /// the Shannon-frontier leaf count) into it. Pure telemetry — the bounds
    /// stay bitwise-identical.
    pub fn with_obs(mut self, obs: Arc<QueryObs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Attaches a [`QueryGovernor`]. The relational pipeline observes it at
    /// every morsel checkpoint; the confidence stage observes it at every
    /// bag and refinement-round checkpoint. Under [`ApproxPolicy::Bounds`] a
    /// *deadline* during refinement degrades to the best bounds so far
    /// instead of an error; cancellation always aborts.
    pub fn with_governor(mut self, governor: QueryGovernor) -> Self {
        self.governor = Some(governor);
        self
    }

    /// Sets the worker pool the plan fans out on. Results are
    /// bitwise-identical at every pool size.
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Sets the seed of the refinement tie-breaker (results are
    /// deterministic per seed at every pool size).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Caps the number of refinement rounds per tuple (benchmark knob for
    /// width-vs-work curves).
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.config.max_rounds = Some(rounds);
        self
    }

    /// Caps the resident bytes of each tuple's Shannon-expansion frontier
    /// (`None` removes the cap). Refinement that would outgrow the cap stops
    /// and returns the current — wider but valid — bounds; the same bytes are
    /// also charged against an attached governor's arena budget.
    pub fn with_frontier_budget(mut self, bytes: Option<usize>) -> Self {
        self.config.frontier_budget = bytes;
        self
    }

    /// The join order the plan uses.
    pub fn join_order(&self) -> &[String] {
        &self.join_order
    }

    /// The plan's approximation policy.
    pub fn policy(&self) -> ApproxPolicy {
        self.config.policy
    }

    /// Computes the lineage-annotated answer tuples (duplicates included).
    ///
    /// # Errors
    /// Fails on execution errors (missing tables/columns) and on governor
    /// interruption.
    pub fn answer_tuples(&self, catalog: &Catalog) -> PlanResult<Annotated> {
        let ctx =
            ExecContext::from_governor(self.governor.as_ref()).with_obs_opt(self.obs.as_ref());
        Ok(evaluate_join_order_ctx(
            &self.query,
            catalog,
            &self.join_order,
            &self.pool,
            &ctx,
        )?)
    }

    /// Runs the intensional confidence stage on a precomputed answer.
    ///
    /// # Errors
    /// Fails with [`ConfError::NotReadOnce`](pdb_conf::ConfError::NotReadOnce)
    /// under [`ApproxPolicy::Exact`] when some tuple's lineage is provably
    /// not read-once, and on governor cancellation.
    pub fn confidences(&self, answer: &Annotated) -> PlanResult<ApproxResult> {
        let pool = self.pool.for_items(answer.len());
        let ctx =
            ExecContext::from_governor(self.governor.as_ref()).with_obs_opt(self.obs.as_ref());
        let _span = ctx.span("conf.bounds");
        anytime_confidences_ctx(answer, &self.config, &pool, &ctx).map_err(crate::PlanError::from)
    }

    /// Executes the plan: answer tuples, then the intensional stage.
    ///
    /// # Errors
    /// Fails on execution or confidence errors (see
    /// [`confidences`](Self::confidences)).
    pub fn execute(&self, catalog: &Catalog) -> PlanResult<ApproxResult> {
        let answer = self.answer_tuples(catalog)?;
        self.confidences(&answer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lazy::LazyPlan;
    use pdb_conf::ConfMethod;
    use pdb_exec::fixtures::{fig1_catalog, fig1_catalog_with_keys};
    use pdb_query::cq::{intro_query_q, intro_query_q_prime};
    use pdb_query::FdSet;

    #[test]
    fn fallback_is_exact_on_the_unsafe_intro_query() {
        // Q' has no safe plan without the key FDs, but its lineage over the
        // Fig. 1 instance factors read-once: the fallback must be exact.
        let catalog = fig1_catalog();
        let plan = FallbackPlan::build(&intro_query_q_prime(), &catalog, ApproxPolicy::Exact)
            .unwrap()
            .with_pool(Pool::new(2));
        let result = plan.execute(&catalog).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].method, ConfMethod::ReadOnce);
        assert_eq!(result[0].lo, result[0].hi);
        assert!((result[0].value() - 0.0028).abs() < 1e-12);
    }

    #[test]
    fn fallback_bounds_bracket_the_safe_plan_answer() {
        let catalog = fig1_catalog_with_keys();
        let q = intro_query_q();
        let exact = LazyPlan::build(&q, &FdSet::from_catalog_decls(&catalog.fds()), &catalog)
            .unwrap()
            .execute(&catalog)
            .unwrap();
        let approx = FallbackPlan::build(&q, &catalog, ApproxPolicy::Bounds { eps: 1e-9 })
            .unwrap()
            .execute(&catalog)
            .unwrap();
        assert_eq!(approx.len(), exact.len());
        for (bracket, (tuple, p)) in approx.iter().zip(exact.iter()) {
            assert_eq!(&bracket.tuple, tuple);
            assert!(
                bracket.lo <= p + 1e-12 && *p <= bracket.hi + 1e-12,
                "[{}, {}] must bracket {p}",
                bracket.lo,
                bracket.hi
            );
        }
    }

    #[test]
    fn fallback_uses_the_optimizer_join_order() {
        let catalog = fig1_catalog_with_keys();
        let plan = FallbackPlan::build(&intro_query_q(), &catalog, ApproxPolicy::Exact).unwrap();
        let lazy = LazyPlan::build(
            &intro_query_q(),
            &FdSet::from_catalog_decls(&catalog.fds()),
            &catalog,
        )
        .unwrap();
        assert_eq!(plan.join_order(), lazy.join_order());
    }
}
