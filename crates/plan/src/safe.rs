//! MystiQ-style safe plans (Fig. 2): the extensional baseline.
//!
//! Safe plans compute probabilities with standard relational operators only:
//! joins multiply tuple probabilities and *independent projections* `π^ind`
//! eliminate duplicates by combining their probabilities. Correctness hinges
//! on a restrictive join order that follows the hierarchy of the query — the
//! very restriction SPROUT lifts. The plan keeps no variable columns, exactly
//! as MystiQ is configured for tuple-independent databases, and optionally
//! uses MystiQ's numerically fragile log-space aggregation so the benchmark
//! harness can reproduce the runtime failures reported in Section VII.

use std::collections::BTreeSet;

use pdb_conf::ConfidenceResult;
use pdb_exec::extensional::{
    filter_ext, independent_project, natural_join_ext, scan_ext, ExtRelation, ProbAggregation,
};
use pdb_query::reduct::FdReduct;
use pdb_query::{ConjunctiveQuery, FdSet, QueryTree};
use pdb_storage::Catalog;

use crate::error::{PlanError, PlanResult};

/// A MystiQ-style safe plan.
#[derive(Debug, Clone)]
pub struct SafePlan {
    query: ConjunctiveQuery,
    tree: QueryTree,
    aggregation: ProbAggregation,
}

impl SafePlan {
    /// Builds a safe plan using the numerically stable probability
    /// aggregation.
    ///
    /// # Errors
    /// Fails with [`PlanError::UnsafeQuery`] if the query has no hierarchical
    /// FD-reduct (no safe plan exists).
    pub fn build(query: &ConjunctiveQuery, fds: &FdSet) -> PlanResult<SafePlan> {
        SafePlan::build_with_aggregation(query, fds, ProbAggregation::Stable)
    }

    /// Builds a safe plan with an explicit probability aggregation mode.
    ///
    /// # Errors
    /// Fails with [`PlanError::UnsafeQuery`] (naming the blocking attribute
    /// pair) if the query has no hierarchical FD-reduct.
    pub fn build_with_aggregation(
        query: &ConjunctiveQuery,
        fds: &FdSet,
        aggregation: ProbAggregation,
    ) -> PlanResult<SafePlan> {
        let reduct = FdReduct::compute(query, fds);
        let status = reduct.hierarchy();
        if !status.is_hierarchical() {
            return Err(PlanError::unsafe_query(query, &status));
        }
        Ok(SafePlan {
            query: query.clone(),
            tree: reduct.tree()?,
            aggregation,
        })
    }

    /// The query tree the safe plan follows.
    pub fn tree(&self) -> &QueryTree {
        &self.tree
    }

    /// Executes the safe plan.
    ///
    /// # Errors
    /// Fails with [`PlanError::MystiqRuntimeError`] if the log-space
    /// aggregation overflows, mirroring the runtime errors of Section VII.
    pub fn execute(&self, catalog: &Catalog) -> PlanResult<ConfidenceResult> {
        let head: BTreeSet<String> = self.query.head_set();
        let result = self.eval_node(&self.tree, &BTreeSet::new(), &head, catalog)?;
        // Restore the head's column order; the groups are already singletons,
        // so the stable aggregation is an exact no-op here.
        let result = independent_project(&result, &self.query.head, ProbAggregation::Stable)
            .map_err(|_| PlanError::MystiqRuntimeError(self.query.to_string()))?;
        let mut out: ConfidenceResult =
            result.rows().iter().map(|(t, p)| (t.clone(), *p)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    fn eval_node(
        &self,
        node: &QueryTree,
        needed_above: &BTreeSet<String>,
        head: &BTreeSet<String>,
        catalog: &Catalog,
    ) -> PlanResult<ExtRelation> {
        match node {
            QueryTree::Leaf { relation, .. } => {
                let atom = self.query.relation(relation).ok_or_else(|| {
                    PlanError::Query(pdb_query::QueryError::UnknownRelation(relation.clone()))
                })?;
                let table = catalog.table(relation)?;
                let scan_attrs: Vec<String> = atom
                    .attributes
                    .iter()
                    .filter(|a| {
                        table.schema().contains(a)
                            && (needed_above.contains(*a)
                                || head.contains(*a)
                                || self
                                    .query
                                    .predicates_for(relation)
                                    .iter()
                                    .any(|p| &p.attribute == *a))
                    })
                    .cloned()
                    .collect();
                let mut scanned = scan_ext(&table, &scan_attrs)?;
                for pred in self.query.predicates_for(relation) {
                    scanned = filter_ext(&scanned, pred)?;
                }
                let keep: Vec<String> = scanned
                    .schema()
                    .names()
                    .into_iter()
                    .filter(|a| needed_above.contains(*a) || head.contains(*a))
                    .map(|s| s.to_string())
                    .collect();
                self.project_ind(&scanned, &keep)
            }
            QueryTree::Inner { children, .. } => {
                // MystiQ's restrictive order: the deepest (least selective)
                // subtrees are joined first.
                let mut ordered: Vec<&QueryTree> = children.iter().collect();
                ordered.sort_by_key(|c| std::cmp::Reverse(c.depth()));
                let mut evaluated = Vec::with_capacity(ordered.len());
                for child in ordered {
                    let child_rels: BTreeSet<String> = child.relations().into_iter().collect();
                    let child_needed = interface_attributes(&self.query, &child_rels);
                    evaluated.push(self.eval_node(child, &child_needed, head, catalog)?);
                }
                let mut joined = evaluated.remove(0);
                for child in &evaluated {
                    joined = natural_join_ext(&joined, child)?;
                }
                let keep: Vec<String> = joined
                    .schema()
                    .names()
                    .into_iter()
                    .filter(|a| needed_above.contains(*a) || head.contains(*a))
                    .map(|s| s.to_string())
                    .collect();
                self.project_ind(&joined, &keep)
            }
        }
    }

    fn project_ind(&self, input: &ExtRelation, attrs: &[String]) -> PlanResult<ExtRelation> {
        independent_project(input, attrs, self.aggregation)
            .map_err(|_| PlanError::MystiqRuntimeError(self.query.to_string()))
    }
}

/// Join attributes shared between the subtree and the rest of the query (same
/// rule as the eager plan's projections).
fn interface_attributes(query: &ConjunctiveQuery, subtree: &BTreeSet<String>) -> BTreeSet<String> {
    query
        .join_attributes()
        .into_iter()
        .filter(|a| {
            let inside = query
                .relations
                .iter()
                .any(|r| subtree.contains(&r.name) && r.has_attribute(a));
            let outside = query
                .relations
                .iter()
                .any(|r| !subtree.contains(&r.name) && r.has_attribute(a));
            inside && outside
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lazy::LazyPlan;
    use pdb_exec::fixtures::{fig1_catalog, fig1_catalog_with_keys};
    use pdb_query::cq::{intro_query_q, intro_query_q_prime};
    use pdb_storage::tuple;

    #[test]
    fn safe_plan_reproduces_the_fig2_result() {
        let catalog = fig1_catalog();
        let plan = SafePlan::build(&intro_query_q(), &FdSet::empty()).unwrap();
        let result = plan.execute(&catalog).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].0, tuple!["1995-01-10"]);
        assert!((result[0].1 - 0.0028).abs() < 1e-9);
    }

    #[test]
    fn safe_plan_agrees_with_lazy_plan_without_selections() {
        let catalog = fig1_catalog();
        let mut q = intro_query_q();
        q.predicates.clear();
        let safe = SafePlan::build(&q, &FdSet::empty())
            .unwrap()
            .execute(&catalog)
            .unwrap();
        let lazy = LazyPlan::build(&q, &FdSet::empty(), &catalog)
            .unwrap()
            .execute(&catalog)
            .unwrap();
        assert_eq!(safe.len(), lazy.len());
        for ((t1, p1), (t2, p2)) in safe.iter().zip(lazy.iter()) {
            assert_eq!(t1, t2);
            assert!((p1 - p2).abs() < 1e-9, "{t1}: safe {p1} vs lazy {p2}");
        }
    }

    #[test]
    fn non_hierarchical_queries_have_no_safe_plan() {
        assert!(matches!(
            SafePlan::build(&intro_query_q_prime(), &FdSet::empty()),
            Err(PlanError::UnsafeQuery { .. })
        ));
        // With the key FDs a (FD-reduct-based) plan exists.
        let catalog = fig1_catalog_with_keys();
        let fds = FdSet::from_catalog_decls(&catalog.fds());
        let plan = SafePlan::build(&intro_query_q_prime(), &fds).unwrap();
        let result = plan.execute(&catalog).unwrap();
        assert!((result[0].1 - 0.0028).abs() < 1e-9);
    }

    #[test]
    fn log_space_aggregation_is_close_on_small_inputs() {
        let catalog = fig1_catalog();
        let plan = SafePlan::build_with_aggregation(
            &intro_query_q(),
            &FdSet::empty(),
            ProbAggregation::MystiqLog,
        )
        .unwrap();
        let result = plan.execute(&catalog).unwrap();
        assert_eq!(result.len(), 1);
        // The 1.001 fudge factor introduces a visible but small bias.
        assert!((result[0].1 - 0.0028).abs() < 0.05);
    }
}
