//! Table statistics and selectivity estimation.
//!
//! SPROUT delegates join ordering to the host engine's cost-based optimizer
//! (Section V.B: "Cost-based decisions can be made using the host relational
//! database engine"). Our in-memory substrate plays that role with classic
//! textbook estimates: per-column distinct counts, uniform-distribution
//! selectivities for constant predicates, and containment-of-value-sets for
//! equi-joins.

use std::collections::{BTreeMap, BTreeSet};

use pdb_query::{CompareOp, ConjunctiveQuery, Predicate};
use pdb_storage::{Catalog, StorageBacking};

use crate::error::PlanResult;

/// Statistics of one table: cardinality and per-column distinct counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableStats {
    /// Number of tuples.
    pub cardinality: usize,
    /// Distinct values per column.
    pub distinct: BTreeMap<String, usize>,
    /// Largest per-chunk distinct-count hint per column, from the columnar
    /// zone statistics (absent for row-backed tables). A column whose
    /// chunks each hold few distinct values clusters well: an `Eq`/`In`
    /// probe touches roughly `chunk_distinct / distinct` of its chunks
    /// after zone pruning.
    pub chunk_distinct: BTreeMap<String, usize>,
}

/// Statistics for all tables referenced by a query.
#[derive(Debug, Clone, Default)]
pub struct Statistics {
    tables: BTreeMap<String, TableStats>,
}

impl Statistics {
    /// Collects statistics for every relation of `query` from `catalog`.
    /// Works on either storage backing — columnar tables answer distinct
    /// counts from their typed columns (dictionary sizes for strings)
    /// without materialising a row view.
    ///
    /// # Errors
    /// Fails if a referenced table is missing.
    pub fn collect(query: &ConjunctiveQuery, catalog: &Catalog) -> PlanResult<Statistics> {
        let mut tables = BTreeMap::new();
        for atom in &query.relations {
            let table = catalog.backing(&atom.name)?;
            let mut distinct = BTreeMap::new();
            let mut chunk_distinct = BTreeMap::new();
            for col in table.schema().names().into_iter().map(str::to_string) {
                distinct.insert(col.clone(), table.distinct_count(&col)?);
                if let StorageBacking::Columnar(t) = &table {
                    chunk_distinct.insert(col.clone(), t.max_chunk_distinct(&col)?);
                }
            }
            tables.insert(
                atom.name.clone(),
                TableStats {
                    cardinality: table.len(),
                    distinct,
                    chunk_distinct,
                },
            );
        }
        Ok(Statistics { tables })
    }

    /// Statistics of a single table, if collected.
    pub fn table(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name)
    }

    /// Estimated selectivity of a constant predicate, in `[0, 1]`.
    pub fn predicate_selectivity(&self, predicate: &Predicate) -> f64 {
        let Some(stats) = self.tables.get(&predicate.relation) else {
            return 1.0;
        };
        let distinct = stats
            .distinct
            .get(&predicate.attribute)
            .copied()
            .unwrap_or(1)
            .max(1) as f64;
        match predicate.op {
            CompareOp::Eq => 1.0 / distinct,
            CompareOp::Ne => 1.0 - 1.0 / distinct,
            // A membership list keeps one uniform share per distinct
            // non-null alternative.
            CompareOp::In => (in_list_len(predicate) as f64 / distinct).min(1.0),
            // Without histograms, assume a range predicate keeps a third of
            // the tuples — the classic System R default.
            CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge => 1.0 / 3.0,
        }
    }

    /// Estimated fraction of a columnar table's chunks an `Eq`/`In`
    /// predicate must actually read after zone-statistics pruning, from the
    /// per-chunk distinct hints: a chunk holds one of `k` probed values
    /// with probability about `k · chunk_distinct / distinct` under uniform
    /// placement, and the per-chunk bloom filters skip the rest. `1.0` when
    /// the predicate cannot prune chunks (ordered operators estimate
    /// through min/max ranges instead), the backing is row-major, or no
    /// hint was collected.
    pub fn scan_fraction(&self, predicate: &Predicate) -> f64 {
        if !matches!(predicate.op, CompareOp::Eq | CompareOp::In) {
            return 1.0;
        }
        let Some(stats) = self.tables.get(&predicate.relation) else {
            return 1.0;
        };
        let Some(&chunk) = stats.chunk_distinct.get(&predicate.attribute) else {
            return 1.0;
        };
        let distinct = stats
            .distinct
            .get(&predicate.attribute)
            .copied()
            .unwrap_or(1)
            .max(1) as f64;
        (in_list_len(predicate) as f64 * chunk as f64 / distinct).min(1.0)
    }

    /// Estimated number of rows the scan of `relation` must *read* (not
    /// return): cardinality scaled by the best chunk-pruning fraction any
    /// of its `Eq`/`In` predicates achieves. The greedy join order uses it
    /// to break cardinality ties in favour of the cheaper scan.
    pub fn scan_cost(&self, query: &ConjunctiveQuery, relation: &str) -> f64 {
        let Some(stats) = self.tables.get(relation) else {
            return 0.0;
        };
        let fraction = query
            .predicates_for(relation)
            .into_iter()
            .map(|p| self.scan_fraction(p))
            .fold(1.0f64, f64::min);
        stats.cardinality as f64 * fraction
    }

    /// Estimated cardinality of `relation` after applying the query's
    /// predicates for it.
    pub fn filtered_cardinality(&self, query: &ConjunctiveQuery, relation: &str) -> f64 {
        let Some(stats) = self.tables.get(relation) else {
            return 0.0;
        };
        let mut card = stats.cardinality as f64;
        for p in query.predicates_for(relation) {
            card *= self.predicate_selectivity(p);
        }
        card
    }

    /// Estimated cardinality of joining an intermediate result of size
    /// `left_card` (covering `left_tables`) with `relation`, using the
    /// containment assumption `|L ⋈ R| ≈ |L| · |R| / max(d_L, d_R)` over the
    /// shared join attributes.
    pub fn join_cardinality(
        &self,
        query: &ConjunctiveQuery,
        left_tables: &[String],
        left_card: f64,
        relation: &str,
    ) -> f64 {
        let right_card = self.filtered_cardinality(query, relation);
        let Some(atom) = query.relation(relation) else {
            return left_card * right_card;
        };
        let mut result = left_card * right_card;
        for attr in &atom.attributes {
            let occurs_left = left_tables.iter().any(|t| {
                query
                    .relation(t)
                    .map(|a| a.has_attribute(attr))
                    .unwrap_or(false)
            });
            if !occurs_left {
                continue;
            }
            let d_right = self
                .tables
                .get(relation)
                .and_then(|s| s.distinct.get(attr))
                .copied()
                .unwrap_or(1);
            let d_left = left_tables
                .iter()
                .filter_map(|t| self.tables.get(t).and_then(|s| s.distinct.get(attr)))
                .copied()
                .max()
                .unwrap_or(1);
            result /= d_left.max(d_right).max(1) as f64;
        }
        result
    }
}

/// Number of distinct non-null constants a predicate probes: 1 for scalar
/// operators, the deduplicated list length for `IN` (duplicate and NULL
/// alternatives match nothing extra).
fn in_list_len(predicate: &Predicate) -> usize {
    match predicate.op {
        CompareOp::In => predicate
            .constants()
            .filter(|c| !c.is_null())
            .collect::<BTreeSet<_>>()
            .len(),
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_exec::fixtures::fig1_catalog;
    use pdb_query::cq::intro_query_q;

    #[test]
    fn collects_cardinalities_and_distinct_counts() {
        let catalog = fig1_catalog();
        let q = intro_query_q();
        let stats = Statistics::collect(&q, &catalog).unwrap();
        assert_eq!(stats.table("Cust").unwrap().cardinality, 4);
        assert_eq!(stats.table("Ord").unwrap().cardinality, 6);
        assert_eq!(stats.table("Ord").unwrap().distinct["ckey"], 3);
        assert!(stats.table("Missing").is_none());
    }

    #[test]
    fn equality_predicates_are_selective() {
        let catalog = fig1_catalog();
        let q = intro_query_q();
        let stats = Statistics::collect(&q, &catalog).unwrap();
        // cname = 'Joe' keeps 1 of 4 distinct names.
        let sel = stats.predicate_selectivity(&q.predicates[0]);
        assert!((sel - 0.25).abs() < 1e-12);
        // discount > 0 uses the 1/3 default.
        let sel = stats.predicate_selectivity(&q.predicates[1]);
        assert!((sel - 1.0 / 3.0).abs() < 1e-12);
        assert!((stats.filtered_cardinality(&q, "Cust") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn join_cardinality_uses_containment() {
        let catalog = fig1_catalog();
        let q = intro_query_q();
        let stats = Statistics::collect(&q, &catalog).unwrap();
        // Cust (1 filtered tuple) ⋈ Ord on ckey: 1 * 6 / max(4, 3) = 1.5.
        let est = stats.join_cardinality(&q, &["Cust".to_string()], 1.0, "Ord");
        assert!(est > 0.0 && est < 6.0);
        // Joining with an unrelated table degenerates to a cross product.
        let est_missing = stats.join_cardinality(&q, &["Cust".to_string()], 2.0, "Nope");
        assert_eq!(est_missing, 0.0);
    }

    #[test]
    fn missing_table_errors() {
        let catalog = pdb_storage::Catalog::new();
        let q = intro_query_q();
        assert!(Statistics::collect(&q, &catalog).is_err());
    }

    #[test]
    fn in_selectivity_counts_distinct_non_null_alternatives() {
        let catalog = fig1_catalog();
        let q = intro_query_q();
        let stats = Statistics::collect(&q, &catalog).unwrap();
        // cname ∈ {Joe, Ann} keeps 2 of 4 distinct names; the duplicate and
        // the NULL alternative add nothing.
        let p = Predicate::is_in(
            "Cust",
            "cname",
            [
                pdb_storage::Value::str("Joe"),
                pdb_storage::Value::str("Ann"),
                pdb_storage::Value::str("Joe"),
                pdb_storage::Value::Null,
            ],
        );
        assert!((stats.predicate_selectivity(&p) - 0.5).abs() < 1e-12);
        // A list longer than the domain caps at 1.
        let p = Predicate::is_in("Cust", "cname", ["a", "b", "c", "d", "e", "f"]);
        assert!((stats.predicate_selectivity(&p) - 1.0).abs() < 1e-12);
        // Row-backed tables collect no chunk hints: no pruning estimate.
        assert!(stats.table("Cust").unwrap().chunk_distinct.is_empty());
        assert!((stats.scan_fraction(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chunk_distinct_hints_estimate_pruned_scans() {
        use pdb_query::{ConjunctiveQuery, RelationAtom};
        use pdb_storage::{ColumnarTable, DataType, ProbTable, Schema, Tuple, Value, Variable};
        // A clustered column: each 64-row chunk holds exactly one of the 4
        // distinct groups, so an Eq probe should read ~1/4 of the chunks.
        let schema = Schema::from_pairs(&[("g", DataType::Int)]).unwrap();
        let mut t = ProbTable::new(schema);
        for r in 0..256usize {
            t.insert(
                Tuple::new(vec![Value::Int((r / 64) as i64)]),
                Variable(r as u64),
                0.5,
            )
            .unwrap();
        }
        let col =
            ColumnarTable::from_prob_table_chunked(&t, &pdb_par::Pool::sequential(), 64).unwrap();
        let catalog = pdb_storage::Catalog::new();
        catalog.register_columnar("T", col).unwrap();
        let q = ConjunctiveQuery::new(
            vec![RelationAtom::new("T", &["g"])],
            vec!["g".to_string()],
            vec![Predicate::new("T", "g", CompareOp::Eq, 2i64)],
        )
        .unwrap();
        let stats = Statistics::collect(&q, &catalog).unwrap();
        assert_eq!(stats.table("T").unwrap().chunk_distinct["g"], 1);
        let eq = &q.predicates[0];
        assert!((stats.scan_fraction(eq) - 0.25).abs() < 1e-12);
        // IN over two groups doubles the estimate; ordered operators and
        // unknown tables don't use the hints.
        let p = Predicate::is_in("T", "g", [0i64, 2]);
        assert!((stats.scan_fraction(&p) - 0.5).abs() < 1e-12);
        let p = Predicate::new("T", "g", CompareOp::Lt, 2i64);
        assert!((stats.scan_fraction(&p) - 1.0).abs() < 1e-12);
        // Scan cost scales cardinality by the best pruning fraction.
        assert!((stats.scan_cost(&q, "T") - 64.0).abs() < 1e-12);
    }
}
