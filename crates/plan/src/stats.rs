//! Table statistics and selectivity estimation.
//!
//! SPROUT delegates join ordering to the host engine's cost-based optimizer
//! (Section V.B: "Cost-based decisions can be made using the host relational
//! database engine"). Our in-memory substrate plays that role with classic
//! textbook estimates: per-column distinct counts, uniform-distribution
//! selectivities for constant predicates, and containment-of-value-sets for
//! equi-joins.

use std::collections::BTreeMap;

use pdb_query::{CompareOp, ConjunctiveQuery, Predicate};
use pdb_storage::Catalog;

use crate::error::PlanResult;

/// Statistics of one table: cardinality and per-column distinct counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableStats {
    /// Number of tuples.
    pub cardinality: usize,
    /// Distinct values per column.
    pub distinct: BTreeMap<String, usize>,
}

/// Statistics for all tables referenced by a query.
#[derive(Debug, Clone, Default)]
pub struct Statistics {
    tables: BTreeMap<String, TableStats>,
}

impl Statistics {
    /// Collects statistics for every relation of `query` from `catalog`.
    /// Works on either storage backing — columnar tables answer distinct
    /// counts from their typed columns (dictionary sizes for strings)
    /// without materialising a row view.
    ///
    /// # Errors
    /// Fails if a referenced table is missing.
    pub fn collect(query: &ConjunctiveQuery, catalog: &Catalog) -> PlanResult<Statistics> {
        let mut tables = BTreeMap::new();
        for atom in &query.relations {
            let table = catalog.backing(&atom.name)?;
            let mut distinct = BTreeMap::new();
            for col in table.schema().names().into_iter().map(str::to_string) {
                distinct.insert(col.clone(), table.distinct_count(&col)?);
            }
            tables.insert(
                atom.name.clone(),
                TableStats {
                    cardinality: table.len(),
                    distinct,
                },
            );
        }
        Ok(Statistics { tables })
    }

    /// Statistics of a single table, if collected.
    pub fn table(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name)
    }

    /// Estimated selectivity of a constant predicate, in `[0, 1]`.
    pub fn predicate_selectivity(&self, predicate: &Predicate) -> f64 {
        let Some(stats) = self.tables.get(&predicate.relation) else {
            return 1.0;
        };
        let distinct = stats
            .distinct
            .get(&predicate.attribute)
            .copied()
            .unwrap_or(1)
            .max(1) as f64;
        match predicate.op {
            CompareOp::Eq => 1.0 / distinct,
            CompareOp::Ne => 1.0 - 1.0 / distinct,
            // Without histograms, assume a range predicate keeps a third of
            // the tuples — the classic System R default.
            CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge => 1.0 / 3.0,
        }
    }

    /// Estimated cardinality of `relation` after applying the query's
    /// predicates for it.
    pub fn filtered_cardinality(&self, query: &ConjunctiveQuery, relation: &str) -> f64 {
        let Some(stats) = self.tables.get(relation) else {
            return 0.0;
        };
        let mut card = stats.cardinality as f64;
        for p in query.predicates_for(relation) {
            card *= self.predicate_selectivity(p);
        }
        card
    }

    /// Estimated cardinality of joining an intermediate result of size
    /// `left_card` (covering `left_tables`) with `relation`, using the
    /// containment assumption `|L ⋈ R| ≈ |L| · |R| / max(d_L, d_R)` over the
    /// shared join attributes.
    pub fn join_cardinality(
        &self,
        query: &ConjunctiveQuery,
        left_tables: &[String],
        left_card: f64,
        relation: &str,
    ) -> f64 {
        let right_card = self.filtered_cardinality(query, relation);
        let Some(atom) = query.relation(relation) else {
            return left_card * right_card;
        };
        let mut result = left_card * right_card;
        for attr in &atom.attributes {
            let occurs_left = left_tables.iter().any(|t| {
                query
                    .relation(t)
                    .map(|a| a.has_attribute(attr))
                    .unwrap_or(false)
            });
            if !occurs_left {
                continue;
            }
            let d_right = self
                .tables
                .get(relation)
                .and_then(|s| s.distinct.get(attr))
                .copied()
                .unwrap_or(1);
            let d_left = left_tables
                .iter()
                .filter_map(|t| self.tables.get(t).and_then(|s| s.distinct.get(attr)))
                .copied()
                .max()
                .unwrap_or(1);
            result /= d_left.max(d_right).max(1) as f64;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_exec::fixtures::fig1_catalog;
    use pdb_query::cq::intro_query_q;

    #[test]
    fn collects_cardinalities_and_distinct_counts() {
        let catalog = fig1_catalog();
        let q = intro_query_q();
        let stats = Statistics::collect(&q, &catalog).unwrap();
        assert_eq!(stats.table("Cust").unwrap().cardinality, 4);
        assert_eq!(stats.table("Ord").unwrap().cardinality, 6);
        assert_eq!(stats.table("Ord").unwrap().distinct["ckey"], 3);
        assert!(stats.table("Missing").is_none());
    }

    #[test]
    fn equality_predicates_are_selective() {
        let catalog = fig1_catalog();
        let q = intro_query_q();
        let stats = Statistics::collect(&q, &catalog).unwrap();
        // cname = 'Joe' keeps 1 of 4 distinct names.
        let sel = stats.predicate_selectivity(&q.predicates[0]);
        assert!((sel - 0.25).abs() < 1e-12);
        // discount > 0 uses the 1/3 default.
        let sel = stats.predicate_selectivity(&q.predicates[1]);
        assert!((sel - 1.0 / 3.0).abs() < 1e-12);
        assert!((stats.filtered_cardinality(&q, "Cust") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn join_cardinality_uses_containment() {
        let catalog = fig1_catalog();
        let q = intro_query_q();
        let stats = Statistics::collect(&q, &catalog).unwrap();
        // Cust (1 filtered tuple) ⋈ Ord on ckey: 1 * 6 / max(4, 3) = 1.5.
        let est = stats.join_cardinality(&q, &["Cust".to_string()], 1.0, "Ord");
        assert!(est > 0.0 && est < 6.0);
        // Joining with an unrelated table degenerates to a cross product.
        let est_missing = stats.join_cardinality(&q, &["Cust".to_string()], 2.0, "Nope");
        assert_eq!(est_missing, 0.0);
    }

    #[test]
    fn missing_table_errors() {
        let catalog = pdb_storage::Catalog::new();
        let q = intro_query_q();
        assert!(Statistics::collect(&q, &catalog).is_err());
    }
}
