//! Eager plans: aggregate after each table and after each join, following the
//! structure of the query tree (Fig. 7 (a)).
//!
//! An eager plan mirrors the safe plan of Fig. 2, except that variable
//! columns are kept, so every intermediate aggregation is an instance of the
//! paper's operator with a signature placed per Section V.B. Each node of the
//! FD-reduct's query tree is evaluated to a relation with exactly one lineage
//! column (the representative variable and probability of the aggregated
//! group); joins between such relations multiply probabilities implicitly
//! through the next aggregation's propagation step.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;
use std::sync::Arc;

use pdb_conf::ConfidenceResult;
use pdb_exec::{ops, Annotated, AnnotatedRow};
use pdb_govern::{Counter, ExecContext, QueryGovernor, QueryObs, SproutError, Stage};
use pdb_lineage::independent_or;
use pdb_par::{Pool, TaskFailure};
use pdb_query::reduct::FdReduct;
use pdb_query::{ConjunctiveQuery, FdSet, QueryTree};
use pdb_storage::{Catalog, Tuple, Variable};

use crate::error::{PlanError, PlanResult};

/// An eager plan for a hierarchical (FD-reduct) query.
#[derive(Debug, Clone)]
pub struct EagerPlan {
    query: ConjunctiveQuery,
    tree: QueryTree,
    pool: Pool,
    governor: Option<QueryGovernor>,
    obs: Option<Arc<QueryObs>>,
}

impl EagerPlan {
    /// Builds an eager plan.
    ///
    /// # Errors
    /// Fails with [`PlanError::UnsafeQuery`] (naming the blocking attribute
    /// pair) if the FD-reduct is not hierarchical.
    pub fn build(query: &ConjunctiveQuery, fds: &FdSet) -> PlanResult<EagerPlan> {
        let reduct = FdReduct::compute(query, fds);
        let status = reduct.hierarchy();
        if !status.is_hierarchical() {
            return Err(PlanError::unsafe_query(query, &status));
        }
        Ok(EagerPlan {
            query: query.clone(),
            tree: reduct.tree()?,
            pool: Pool::from_env(),
            governor: None,
            obs: None,
        })
    }

    /// Attaches a per-query observability collector: scans, joins, and the
    /// per-node aggregations tally deterministic counters into it. Pure
    /// telemetry — the answer stays bitwise-identical.
    pub fn with_obs(mut self, obs: Arc<QueryObs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Attaches a [`QueryGovernor`]: the plan's scans, projections and joins
    /// observe its cancellation token, deadline, and memory budget at every
    /// morsel/chunk checkpoint, returning [`PlanError::Governed`] when
    /// interrupted. The happy path is bitwise-identical to the ungoverned
    /// one.
    pub fn with_governor(mut self, governor: QueryGovernor) -> Self {
        self.governor = Some(governor);
        self
    }

    /// Sets the worker pool the plan's scans, filters, projections, joins
    /// *and per-node aggregations* fan out on (the default is
    /// [`Pool::from_env`]; aggregations build per-worker chunk maps merged
    /// in chunk order). Results are identical at every pool size.
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// The query tree driving the plan.
    pub fn tree(&self) -> &QueryTree {
        &self.tree
    }

    /// Executes the plan, producing the distinct answer tuples and their
    /// confidences.
    ///
    /// # Errors
    /// Fails on execution errors.
    pub fn execute(&self, catalog: &Catalog) -> PlanResult<ConfidenceResult> {
        let ctx =
            ExecContext::from_governor(self.governor.as_ref()).with_obs_opt(self.obs.as_ref());
        let head: BTreeSet<String> = self.query.head_set();
        let (result, _) = self.eval_node(&self.tree, &BTreeSet::new(), &head, catalog, &ctx)?;
        // The root aggregation groups by the head attributes; its single
        // lineage column holds the confidence of each distinct tuple. The
        // projection restores the head's column order.
        let result = ops::project(&result, &self.query.head)?;
        let mut out: Vec<(Tuple, f64)> = result
            .iter()
            .map(|r| (r.data_tuple(), r.lineage[0].1))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Evaluates one node of the query tree into a relation with a single
    /// lineage column, aggregated per (attributes needed above ∪ head).
    fn eval_node(
        &self,
        node: &QueryTree,
        needed_above: &BTreeSet<String>,
        head: &BTreeSet<String>,
        catalog: &Catalog,
        ctx: &ExecContext,
    ) -> PlanResult<(Annotated, String)> {
        match node {
            QueryTree::Leaf { relation, .. } => {
                let atom = self.query.relation(relation).ok_or_else(|| {
                    PlanError::Query(pdb_query::QueryError::UnknownRelation(relation.clone()))
                })?;
                let table = catalog.backing(relation)?;
                // Scan the physically available attributes that are needed
                // above, in the head, or used by a predicate.
                let scan_attrs: Vec<String> = atom
                    .attributes
                    .iter()
                    .filter(|a| {
                        table.schema().contains(a)
                            && (needed_above.contains(*a)
                                || head.contains(*a)
                                || self
                                    .query
                                    .predicates_for(relation)
                                    .iter()
                                    .any(|p| &p.attribute == *a))
                    })
                    .cloned()
                    .collect();
                // The leaf runs one fused scan-filter-project, gated on the
                // base table's size; a columnar backing's zone maps prune
                // before any row is decoded. The result is identical across
                // backings.
                let scanned = ops::scan_filter_project_backing_ctx(
                    &table,
                    relation,
                    &self.query.predicates_for(relation),
                    &scan_attrs,
                    &self.pool.for_items(table.len()),
                    ctx,
                )?;
                let keep: Vec<String> = scanned
                    .schema()
                    .names()
                    .into_iter()
                    .filter(|a| needed_above.contains(*a) || head.contains(*a))
                    .map(|s| s.to_string())
                    .collect();
                let projected =
                    ops::project_ctx(&scanned, &keep, &self.pool.for_items(scanned.len()), ctx)?;
                Ok((
                    aggregate_single_column(&projected, &self.pool, ctx)?,
                    relation.clone(),
                ))
            }
            QueryTree::Inner { children, .. } => {
                // Every child subtree keeps its *interface* attributes: the
                // original query's join attributes it shares with relations
                // outside the subtree. This is what the safe-plan projections
                // of Fig. 2 keep, and — because functionally determined
                // attributes are constant within each group — it groups
                // exactly as the FD-reduct's labels prescribe.
                let mut evaluated = Vec::with_capacity(children.len());
                for child in children {
                    let child_rels: BTreeSet<String> = child.relations().into_iter().collect();
                    let child_needed = interface_attributes(&self.query, &child_rels);
                    evaluated.push(self.eval_node(child, &child_needed, head, catalog, ctx)?);
                }
                let representative = evaluated[0].1.clone();
                let mut joined = evaluated[0].0.clone();
                for (child, _) in &evaluated[1..] {
                    let join_pool = self.pool.for_items(joined.len().max(child.len()));
                    joined = ops::natural_join_ctx(&joined, child, &join_pool, ctx)?;
                }
                let keep: Vec<String> = joined
                    .schema()
                    .names()
                    .into_iter()
                    .filter(|a| needed_above.contains(*a) || head.contains(*a))
                    .map(|s| s.to_string())
                    .collect();
                let projected =
                    ops::project_ctx(&joined, &keep, &self.pool.for_items(joined.len()), ctx)?;
                Ok((
                    aggregate_joined(&projected, &representative, &self.pool, ctx)?,
                    representative,
                ))
            }
        }
    }
}

/// The join attributes of `query` that occur both inside and outside the
/// given set of relations — the columns a subplan over exactly those
/// relations must keep for joins still to come.
fn interface_attributes(query: &ConjunctiveQuery, subtree: &BTreeSet<String>) -> BTreeSet<String> {
    query
        .join_attributes()
        .into_iter()
        .filter(|a| {
            let inside = query
                .relations
                .iter()
                .any(|r| subtree.contains(&r.name) && r.has_attribute(a));
            let outside = query
                .relations
                .iter()
                .any(|r| !subtree.contains(&r.name) && r.has_attribute(a));
            inside && outside
        })
        .collect()
}

/// Rows per aggregation chunk: one per-worker map and one governor
/// checkpoint per chunk (the kernel-chunk granularity every other stage
/// observes).
const AGG_CHUNK_ROWS: usize = 1024;

/// The input cut into `AGG_CHUNK_ROWS`-sized row ranges.
fn agg_chunks(rows: usize) -> Vec<Range<usize>> {
    (0..rows.div_ceil(AGG_CHUNK_ROWS))
        .map(|k| k * AGG_CHUNK_ROWS..((k + 1) * AGG_CHUNK_ROWS).min(rows))
        .collect()
}

/// Converts a parallel aggregation failure: task errors propagate verbatim,
/// worker panics are isolated into [`SproutError::WorkerPanic`].
fn agg_task_failure(failure: TaskFailure<PlanError>) -> PlanError {
    match failure {
        TaskFailure::Err { error, .. } => error,
        TaskFailure::Panic { item, message } => PlanError::Governed(SproutError::WorkerPanic {
            stage: Stage::Aggregate,
            item,
            message,
        }),
    }
}

/// Aggregates a single-relation input: one output row per distinct data
/// tuple, whose lineage is the minimal variable of the group and the
/// independent-or of the group's distinct variables (the `[R*]` operator on
/// top of a base-table scan).
///
/// Parallel and deterministic: workers aggregate fixed row chunks into
/// per-chunk maps, merged in ascending chunk order — a later chunk's
/// `(variable → probability)` entry overwrites an earlier chunk's exactly
/// as later rows overwrite earlier ones in the sequential loop, so the
/// merged groups (and the `BTreeMap`-ordered output) are identical at
/// every thread count. Checkpoints `eager.aggregate` per chunk.
///
/// # Errors
/// Fails with [`PlanError::Governed`] when the governor interrupts.
fn aggregate_single_column(
    input: &Annotated,
    pool: &Pool,
    ctx: &ExecContext,
) -> PlanResult<Annotated> {
    type Groups = BTreeMap<Tuple, BTreeMap<Variable, f64>>;
    let chunks = agg_chunks(input.len());
    let partials: Vec<Groups> = pool
        .for_items(input.len())
        .try_map(&chunks, |k, range| {
            ctx.checkpoint(Stage::Aggregate, "eager.aggregate", k)?;
            let mut groups: Groups = BTreeMap::new();
            for i in range.clone() {
                let row = input.row(i);
                let (var, p) = row.lineage[0];
                groups.entry(row.data_tuple()).or_default().insert(var, p);
            }
            Ok::<_, PlanError>(groups)
        })
        .map_err(agg_task_failure)?;
    let mut groups: Groups = BTreeMap::new();
    for partial in partials {
        for (data, members) in partial {
            groups.entry(data).or_default().extend(members);
        }
    }
    // The merged group count is a function of the input rows alone — the
    // chunk split never changes it — so it is a deterministic counter.
    ctx.tally(Counter::EagerGroups, groups.len() as u64);
    let mut out = Annotated::new(input.schema().clone(), input.relations().to_vec());
    for (data, members) in groups {
        let representative = *members.keys().next().expect("non-empty group");
        let prob = independent_or(members.values().copied());
        out.push(AnnotatedRow::new(data, vec![(representative, prob)]));
    }
    Ok(out)
}

/// Aggregates the join of already-aggregated children: per output row the
/// probability is the product of the children's probabilities (propagation);
/// per group of duplicate data tuples the rows describe independent events
/// and are combined with independent-or. The surviving lineage column is the
/// representative child's.
///
/// Parallel and deterministic like [`aggregate_single_column`]: per-chunk
/// group vectors are concatenated in ascending chunk order, reproducing the
/// sequential row order within every group (the independent-or folds the
/// same floats in the same order).
///
/// # Errors
/// Fails with [`PlanError::Governed`] when the governor interrupts.
fn aggregate_joined(
    input: &Annotated,
    representative: &str,
    pool: &Pool,
    ctx: &ExecContext,
) -> PlanResult<Annotated> {
    type Groups = BTreeMap<Tuple, Vec<(Variable, f64)>>;
    let rep_idx = input
        .relation_index(representative)
        .expect("representative child is part of the join");
    let chunks = agg_chunks(input.len());
    let partials: Vec<Groups> = pool
        .for_items(input.len())
        .try_map(&chunks, |k, range| {
            ctx.checkpoint(Stage::Aggregate, "eager.aggregate", k)?;
            let mut groups: Groups = BTreeMap::new();
            for i in range.clone() {
                let row = input.row(i);
                let prob: f64 = row.lineage.iter().map(|(_, p)| *p).product();
                let var = row.lineage[rep_idx].0;
                groups
                    .entry(row.data_tuple())
                    .or_default()
                    .push((var, prob));
            }
            Ok::<_, PlanError>(groups)
        })
        .map_err(agg_task_failure)?;
    let mut groups: Groups = BTreeMap::new();
    for partial in partials {
        for (data, members) in partial {
            groups.entry(data).or_default().extend(members);
        }
    }
    ctx.tally(Counter::EagerGroups, groups.len() as u64);
    let mut out = Annotated::new(input.schema().clone(), vec![representative.to_string()]);
    for (data, members) in groups {
        let rep_var = members.iter().map(|(v, _)| *v).min().expect("non-empty");
        let prob = independent_or(members.iter().map(|(_, p)| *p));
        out.push(AnnotatedRow::new(data, vec![(rep_var, prob)]));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_exec::fixtures::{fig1_catalog, fig1_catalog_with_keys};
    use pdb_query::cq::{intro_query_q, intro_query_q_prime};
    use pdb_storage::tuple;

    #[test]
    fn eager_plan_matches_the_paper_confidence() {
        let catalog = fig1_catalog();
        let plan = EagerPlan::build(&intro_query_q(), &FdSet::empty()).unwrap();
        let result = plan.execute(&catalog).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].0, tuple!["1995-01-10"]);
        assert!((result[0].1 - 0.0028).abs() < 1e-12);
    }

    #[test]
    fn eager_plan_with_fds_handles_q_prime() {
        let catalog = fig1_catalog_with_keys();
        let fds = FdSet::from_catalog_decls(&catalog.fds());
        let plan = EagerPlan::build(&intro_query_q_prime(), &fds).unwrap();
        let result = plan.execute(&catalog).unwrap();
        assert_eq!(result.len(), 1);
        assert!((result[0].1 - 0.0028).abs() < 1e-12);
    }

    #[test]
    fn eager_plan_agrees_with_lazy_plan_on_wider_queries() {
        use crate::lazy::LazyPlan;
        let catalog = fig1_catalog();
        let mut q = intro_query_q();
        q.predicates.clear();
        let eager = EagerPlan::build(&q, &FdSet::empty()).unwrap();
        let lazy = LazyPlan::build(&q, &FdSet::empty(), &catalog).unwrap();
        let e = eager.execute(&catalog).unwrap();
        let l = lazy.execute(&catalog).unwrap();
        assert_eq!(e.len(), l.len());
        for ((t1, p1), (t2, p2)) in e.iter().zip(l.iter()) {
            assert_eq!(t1, t2);
            assert!((p1 - p2).abs() < 1e-9, "{t1}: eager {p1} vs lazy {p2}");
        }
    }

    #[test]
    fn eager_plan_is_bitwise_identical_across_thread_counts() {
        // Tentpole (d): the parallel per-node aggregations merge per-chunk
        // maps in a deterministic order, so the answer (tuples, confidences)
        // is bitwise-identical at every pool size.
        let catalog = fig1_catalog();
        let q = intro_query_q();
        let reference = EagerPlan::build(&q, &FdSet::empty())
            .unwrap()
            .with_pool(Pool::sequential())
            .execute(&catalog)
            .unwrap();
        for threads in [1usize, 2, 4, 8] {
            let result = EagerPlan::build(&q, &FdSet::empty())
                .unwrap()
                .with_pool(Pool::new(threads))
                .execute(&catalog)
                .unwrap();
            assert_eq!(result.len(), reference.len(), "{threads} threads");
            for ((t1, p1), (t2, p2)) in reference.iter().zip(result.iter()) {
                assert_eq!(t1, t2, "{threads} threads");
                assert_eq!(p1.to_bits(), p2.to_bits(), "{threads} threads: {t1}");
            }
        }
    }

    #[test]
    fn parallel_aggregation_handles_many_chunks() {
        // More rows than AGG_CHUNK_ROWS so the aggregation genuinely fans
        // out into several per-chunk maps; duplicates straddle chunk
        // boundaries to exercise the cross-chunk merge.
        use pdb_query::{ConjunctiveQuery, RelationAtom};
        use pdb_storage::{DataType, ProbTable, Schema, Value, Variable};

        let schema = Schema::from_pairs(&[("g", DataType::Int), ("x", DataType::Int)]).unwrap();
        let mut table = ProbTable::new(schema);
        let rows = 4 * AGG_CHUNK_ROWS + 7;
        for i in 0..rows {
            table
                .insert(
                    tuple![Value::Int((i % 5) as i64), Value::Int((i % 97) as i64)],
                    Variable(i as u64),
                    0.25,
                )
                .unwrap();
        }
        let catalog = Catalog::new();
        catalog.register_table("R", table).unwrap();
        let q = ConjunctiveQuery::new(
            vec![RelationAtom::new("R", &["g", "x"])],
            vec!["g".to_string()],
            vec![],
        )
        .unwrap();
        let reference = EagerPlan::build(&q, &FdSet::empty())
            .unwrap()
            .with_pool(Pool::sequential())
            .execute(&catalog)
            .unwrap();
        assert_eq!(reference.len(), 5);
        for threads in [2usize, 8] {
            let result = EagerPlan::build(&q, &FdSet::empty())
                .unwrap()
                .with_pool(Pool::new(threads))
                .execute(&catalog)
                .unwrap();
            assert_eq!(result.len(), reference.len());
            for ((t1, p1), (t2, p2)) in reference.iter().zip(result.iter()) {
                assert_eq!(t1, t2);
                assert_eq!(p1.to_bits(), p2.to_bits(), "{t1}");
            }
        }
    }

    #[test]
    fn non_hierarchical_query_is_rejected() {
        assert!(matches!(
            EagerPlan::build(&intro_query_q_prime(), &FdSet::empty()),
            Err(PlanError::UnsafeQuery { .. })
        ));
    }

    #[test]
    fn boolean_query_reduces_to_one_row() {
        let catalog = fig1_catalog();
        let q = intro_query_q().boolean_version();
        let plan = EagerPlan::build(&q, &FdSet::empty()).unwrap();
        let result = plan.execute(&catalog).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].0, Tuple::empty());
        assert!((result[0].1 - 0.0028).abs() < 1e-12);
    }
}
