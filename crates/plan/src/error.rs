//! Error type for planning and plan execution.

use std::fmt;

use pdb_conf::ConfError;
use pdb_exec::ExecError;
use pdb_govern::SproutError;
use pdb_query::hierarchy::HierarchyStatus;
use pdb_query::{ConjunctiveQuery, QueryError};
use pdb_storage::StorageError;

/// Errors raised while building or executing plans.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The query (or its FD-reduct under the available dependencies) is not
    /// hierarchical, so no safe plan exists and exact evaluation is #P-hard.
    /// The witness names the blocking attribute pair: two join attributes
    /// co-occurring in `table` with incomparable atom sets.
    UnsafeQuery {
        /// Display form of the offending query.
        query: String,
        /// First blocking join attribute.
        attr_a: String,
        /// Second blocking join attribute.
        attr_b: String,
        /// A table in which both attributes occur.
        table: String,
    },
    /// MystiQ's log-space probability aggregation failed with a runtime error
    /// (Section VII) — the plan produced no result.
    MystiqRuntimeError(String),
    /// Static analysis error.
    Query(QueryError),
    /// Execution error.
    Exec(ExecError),
    /// Confidence computation error.
    Conf(ConfError),
    /// Storage error.
    Storage(StorageError),
    /// The query governor interrupted plan execution (cancellation, deadline,
    /// memory budget) or a worker panicked and was isolated.
    Governed(SproutError),
}

impl PlanError {
    /// The typed unsafe-query error for a hierarchy violation: extracts the
    /// blocking attribute pair from the FD-reduct's [`HierarchyStatus`]
    /// witness. Call only with a non-hierarchical status; a (buggy)
    /// hierarchical status degrades to an empty witness rather than a panic.
    pub fn unsafe_query(query: &ConjunctiveQuery, status: &HierarchyStatus) -> PlanError {
        match status {
            HierarchyStatus::NonHierarchical {
                attr_a,
                attr_b,
                table,
            } => PlanError::UnsafeQuery {
                query: query.to_string(),
                attr_a: attr_a.clone(),
                attr_b: attr_b.clone(),
                table: table.clone(),
            },
            HierarchyStatus::Hierarchical => PlanError::UnsafeQuery {
                query: query.to_string(),
                attr_a: String::new(),
                attr_b: String::new(),
                table: String::new(),
            },
        }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnsafeQuery {
                query,
                attr_a,
                attr_b,
                table,
            } => write!(
                f,
                "query has no safe plan and is #P-hard (join attributes {attr_a} and {attr_b} \
                 co-occur in {table} but neither participates in all joins of the other): {query}"
            ),
            PlanError::MystiqRuntimeError(q) => {
                write!(f, "MystiQ plan failed with a runtime error on query: {q}")
            }
            PlanError::Query(e) => write!(f, "{e}"),
            PlanError::Exec(e) => write!(f, "{e}"),
            PlanError::Conf(e) => write!(f, "{e}"),
            PlanError::Storage(e) => write!(f, "{e}"),
            PlanError::Governed(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<QueryError> for PlanError {
    fn from(e: QueryError) -> Self {
        PlanError::Query(e)
    }
}

impl From<ExecError> for PlanError {
    fn from(e: ExecError) -> Self {
        // A governed interruption keeps its identity across layers instead
        // of burying itself inside an Exec wrapper.
        match e {
            ExecError::Governed(g) => PlanError::Governed(g),
            other => PlanError::Exec(other),
        }
    }
}

impl From<ConfError> for PlanError {
    fn from(e: ConfError) -> Self {
        match e {
            ConfError::Governed(g) => PlanError::Governed(g),
            other => PlanError::Conf(other),
        }
    }
}

impl From<SproutError> for PlanError {
    fn from(e: SproutError) -> Self {
        PlanError::Governed(e)
    }
}

impl From<StorageError> for PlanError {
    fn from(e: StorageError) -> Self {
        PlanError::Storage(e)
    }
}

/// Convenience result alias.
pub type PlanResult<T> = Result<T, PlanError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: PlanError = QueryError::EmptyQuery.into();
        assert!(e.to_string().contains("no relation"));
        let e: PlanError = StorageError::UnknownTable("T".into()).into();
        assert!(e.to_string().contains("T"));
        let unsafe_err = PlanError::UnsafeQuery {
            query: "Q5".into(),
            attr_a: "skey".into(),
            attr_b: "okey".into(),
            table: "Item".into(),
        };
        let s = unsafe_err.to_string();
        assert!(s.contains("#P-hard") && s.contains("skey") && s.contains("okey"));
        assert!(s.contains("Item") && s.contains("Q5"));
        assert!(PlanError::MystiqRuntimeError("Q1".into())
            .to_string()
            .contains("runtime error"));
    }

    #[test]
    fn unsafe_query_carries_the_hierarchy_witness() {
        use pdb_query::cq::intro_query_q_prime;
        use pdb_query::reduct::FdReduct;
        use pdb_query::FdSet;
        let q = intro_query_q_prime();
        let reduct = FdReduct::compute(&q, &FdSet::empty());
        let status = reduct.hierarchy();
        assert!(!status.is_hierarchical());
        match PlanError::unsafe_query(&q, &status) {
            PlanError::UnsafeQuery {
                attr_a,
                attr_b,
                table,
                query,
            } => {
                assert!(!attr_a.is_empty() && !attr_b.is_empty());
                assert!(!table.is_empty());
                assert!(query.contains("Ord"));
            }
            other => panic!("expected UnsafeQuery, got {other:?}"),
        }
    }
}
