//! Error type for planning and plan execution.

use std::fmt;

use pdb_conf::ConfError;
use pdb_exec::ExecError;
use pdb_govern::SproutError;
use pdb_query::QueryError;
use pdb_storage::StorageError;

/// Errors raised while building or executing plans.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The query (or its FD-reduct under the available dependencies) is not
    /// hierarchical, so no exact plan exists (the query is #P-hard).
    Intractable(String),
    /// MystiQ's log-space probability aggregation failed with a runtime error
    /// (Section VII) — the plan produced no result.
    MystiqRuntimeError(String),
    /// Static analysis error.
    Query(QueryError),
    /// Execution error.
    Exec(ExecError),
    /// Confidence computation error.
    Conf(ConfError),
    /// Storage error.
    Storage(StorageError),
    /// The query governor interrupted plan execution (cancellation, deadline,
    /// memory budget) or a worker panicked and was isolated.
    Governed(SproutError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Intractable(q) => {
                write!(f, "query has no hierarchical FD-reduct and is #P-hard: {q}")
            }
            PlanError::MystiqRuntimeError(q) => {
                write!(f, "MystiQ plan failed with a runtime error on query: {q}")
            }
            PlanError::Query(e) => write!(f, "{e}"),
            PlanError::Exec(e) => write!(f, "{e}"),
            PlanError::Conf(e) => write!(f, "{e}"),
            PlanError::Storage(e) => write!(f, "{e}"),
            PlanError::Governed(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<QueryError> for PlanError {
    fn from(e: QueryError) -> Self {
        PlanError::Query(e)
    }
}

impl From<ExecError> for PlanError {
    fn from(e: ExecError) -> Self {
        // A governed interruption keeps its identity across layers instead
        // of burying itself inside an Exec wrapper.
        match e {
            ExecError::Governed(g) => PlanError::Governed(g),
            other => PlanError::Exec(other),
        }
    }
}

impl From<ConfError> for PlanError {
    fn from(e: ConfError) -> Self {
        match e {
            ConfError::Governed(g) => PlanError::Governed(g),
            other => PlanError::Conf(other),
        }
    }
}

impl From<SproutError> for PlanError {
    fn from(e: SproutError) -> Self {
        PlanError::Governed(e)
    }
}

impl From<StorageError> for PlanError {
    fn from(e: StorageError) -> Self {
        PlanError::Storage(e)
    }
}

/// Convenience result alias.
pub type PlanResult<T> = Result<T, PlanError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: PlanError = QueryError::EmptyQuery.into();
        assert!(e.to_string().contains("no relation"));
        let e: PlanError = StorageError::UnknownTable("T".into()).into();
        assert!(e.to_string().contains("T"));
        assert!(PlanError::Intractable("Q5".into())
            .to_string()
            .contains("#P-hard"));
        assert!(PlanError::MystiqRuntimeError("Q1".into())
            .to_string()
            .contains("runtime error"));
    }
}
