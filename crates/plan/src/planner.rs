//! The planner facade: choose a plan kind, execute it, and report the
//! measurements the paper's evaluation section is built from (time to compute
//! the answer tuples vs. time to compute the probabilities, number of answer
//! tuples vs. distinct tuples, number of scans).

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pdb_conf::{ApproxPolicy, ApproxResult, ConfidenceResult};
use pdb_exec::extensional::ProbAggregation;
use pdb_govern::{Counter, ExecContext, QueryGovernor, QueryObs, Stage};
use pdb_par::Pool;
use pdb_query::reduct::FdReduct;
use pdb_query::{ConjunctiveQuery, FdSet, Signature};
use pdb_storage::Catalog;

use crate::eager::EagerPlan;
use crate::error::{PlanError, PlanResult};
use crate::explain::{ExplainPath, ExplainScan, PlanExplain};
use crate::fallback::FallbackPlan;
use crate::hybrid::HybridPlan;
use crate::join_order::greedy_join_order;
use crate::lazy::LazyPlan;
use crate::safe::SafePlan;

/// The plan families compared throughout Section VII.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanKind {
    /// Lazy plan: best join order, confidence computation at the very end.
    Lazy,
    /// Eager plan: aggregation after each table and each join.
    Eager,
    /// Hybrid plan: aggregations of the listed relations pushed to the
    /// leaves, lazy tail.
    Hybrid(Vec<String>),
    /// MystiQ safe plan (extensional), with the numerically stable
    /// aggregation.
    Mystiq,
    /// MystiQ safe plan with the original log-space aggregation that fails on
    /// large duplicate groups (Section VII).
    MystiqLogSpace,
}

impl fmt::Display for PlanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanKind::Lazy => write!(f, "lazy"),
            PlanKind::Eager => write!(f, "eager"),
            PlanKind::Hybrid(pushed) => write!(f, "hybrid({})", pushed.join(",")),
            PlanKind::Mystiq => write!(f, "mystiq"),
            PlanKind::MystiqLogSpace => write!(f, "mystiq-log"),
        }
    }
}

/// The outcome of executing a plan, with the measurements the benchmark
/// harness reports.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Which plan was executed.
    pub kind: PlanKind,
    /// Distinct answer tuples with their confidences.
    pub confidences: ConfidenceResult,
    /// Number of answer tuples before duplicate elimination (lazy plans
    /// only; other plans eliminate duplicates as they go).
    pub answer_tuples: Option<usize>,
    /// Number of distinct answer tuples.
    pub distinct_tuples: usize,
    /// Wall-clock time spent computing (and materialising) the answer tuples.
    pub tuple_time: Duration,
    /// Wall-clock time spent computing confidences.
    pub confidence_time: Duration,
    /// Number of scans the confidence operator needed (lazy/hybrid plans).
    pub scans: Option<usize>,
    /// The signature of the top-level confidence operator, if the plan has
    /// one.
    pub signature: Option<Signature>,
    /// Per-tuple confidence *brackets* when the query had no safe plan and
    /// the planner fell back to the intensional evaluators (`None` on the
    /// exact plan families). `confidences` then holds each bracket's
    /// [`value`](pdb_conf::TupleConfidence::value).
    pub approx: Option<ApproxResult>,
}

impl PlanReport {
    /// Total wall-clock time.
    pub fn total_time(&self) -> Duration {
        self.tuple_time + self.confidence_time
    }
}

/// Plans and executes queries over a catalog, using the catalog's declared
/// keys and functional dependencies to refine signatures.
#[derive(Debug)]
pub struct Planner<'a> {
    catalog: &'a Catalog,
    use_fds: bool,
    governor: Option<QueryGovernor>,
    obs: Option<Arc<QueryObs>>,
    approx_policy: Option<ApproxPolicy>,
    approx_seed: u64,
    pool: Option<Pool>,
    frontier_budget: Option<Option<usize>>,
}

impl<'a> Planner<'a> {
    /// A planner that exploits the catalog's functional dependencies.
    pub fn new(catalog: &'a Catalog) -> Planner<'a> {
        Planner {
            catalog,
            use_fds: true,
            governor: None,
            obs: None,
            approx_policy: None,
            approx_seed: 0,
            pool: None,
            frontier_budget: None,
        }
    }

    /// A planner that ignores functional dependencies (used by the Fig. 13
    /// ablation).
    pub fn without_fds(catalog: &'a Catalog) -> Planner<'a> {
        Planner {
            catalog,
            use_fds: false,
            governor: None,
            obs: None,
            approx_policy: None,
            approx_seed: 0,
            pool: None,
            frontier_budget: None,
        }
    }

    /// Enables the intensional fallback for unsafe queries: when the chosen
    /// plan kind fails with [`PlanError::UnsafeQuery`], the planner retries
    /// with a [`FallbackPlan`] under `policy` (read-once factorization,
    /// then anytime dissociation bounds if the policy allows them) instead
    /// of surfacing the error. Queries *with* a safe plan are unaffected —
    /// their results stay bitwise-identical to a planner without a policy.
    pub fn with_approx_policy(mut self, policy: ApproxPolicy) -> Self {
        self.approx_policy = Some(policy);
        self
    }

    /// Sets the seed of the fallback's refinement tie-breaker (deterministic
    /// per seed at every pool size).
    pub fn with_approx_seed(mut self, seed: u64) -> Self {
        self.approx_seed = seed;
        self
    }

    /// Sets the worker pool every plan fans out on, instead of each plan
    /// reading `SPROUT_THREADS` for itself. Results are bitwise-identical at
    /// every pool size, which is what lets an admission scheduler hand
    /// queries different thread shares without changing their answers.
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Caps the resident bytes of the fallback's per-tuple Shannon-expansion
    /// frontier: `Some(bytes)` to cap, `None` to remove the default cap.
    /// Refinement that would outgrow the cap degrades to wider-but-valid
    /// bounds instead of erroring.
    pub fn with_frontier_budget(mut self, bytes: Option<usize>) -> Self {
        self.frontier_budget = Some(bytes);
        self
    }

    /// Attaches a [`QueryGovernor`] to every plan the planner executes:
    /// lazy, eager, and hybrid plans observe its cancellation token,
    /// deadline, and memory budget at every morsel/chunk/bag checkpoint and
    /// return [`PlanError::Governed`] when interrupted. The extensional
    /// MystiQ comparators check the governor once on entry only — they are
    /// the baseline the paper compares against, not a governed engine path.
    pub fn with_governor(mut self, governor: QueryGovernor) -> Self {
        self.governor = Some(governor);
        self
    }

    /// Attaches a per-query observability collector to every plan the
    /// planner executes: scans, joins, aggregations, and confidence stages
    /// tally deterministic counters into it, and — when the collector has
    /// tracing enabled — the planner records `plan` / `plan.tuples` /
    /// `plan.confidence` spans around each phase. Pure telemetry: answers,
    /// row order, and confidences stay bitwise-identical.
    pub fn with_obs(mut self, obs: Arc<QueryObs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The dependency set the planner uses.
    pub fn fds(&self) -> FdSet {
        if self.use_fds {
            FdSet::from_catalog_decls(&self.catalog.fds())
        } else {
            FdSet::empty()
        }
    }

    /// Whether `query` is tractable for exact computation under the
    /// available dependencies (i.e. has a hierarchical FD-reduct).
    pub fn is_tractable(&self, query: &ConjunctiveQuery) -> bool {
        FdReduct::compute(query, &self.fds()).is_hierarchical()
    }

    /// The signature the confidence operator would use for `query`.
    ///
    /// # Errors
    /// Fails if the query is intractable.
    pub fn signature(&self, query: &ConjunctiveQuery) -> PlanResult<Signature> {
        FdReduct::compute(query, &self.fds())
            .signature()
            .map_err(PlanError::from)
    }

    /// Explains what executing `query` with the chosen plan kind *would* do,
    /// without executing: safe plan vs. intensional fallback, the top-level
    /// signature and scan count, the greedy join order, each relation's
    /// storage backing and pushed-down predicates, and the approximation
    /// policy in force. The decision procedure is exactly
    /// [`execute`](Self::execute)'s — a query that would fall back here falls
    /// back there.
    ///
    /// # Errors
    /// Fails with [`PlanError::UnsafeQuery`] if the query has no safe plan
    /// and no approximation policy is set, and on unknown relations.
    pub fn explain(&self, query: &ConjunctiveQuery, kind: PlanKind) -> PlanResult<PlanExplain> {
        let fds = self.fds();
        let reduct = FdReduct::compute(query, &fds);
        let tractable = reduct.is_hierarchical();
        let path = if tractable {
            ExplainPath::Safe
        } else if self.approx_policy.is_some() {
            ExplainPath::Fallback
        } else {
            return Err(PlanError::unsafe_query(query, &reduct.hierarchy()));
        };
        let signature = match path {
            ExplainPath::Safe => Some(reduct.signature()?),
            ExplainPath::Fallback => None,
        };
        let join_order = greedy_join_order(query, self.catalog)?;
        let scan_details = join_order
            .iter()
            .map(|rel| {
                let table = self.catalog.backing(rel)?;
                Ok(ExplainScan {
                    relation: rel.clone(),
                    backing: match &table {
                        pdb_storage::StorageBacking::Row(_) => "row",
                        pdb_storage::StorageBacking::Columnar(_) => "columnar",
                    },
                    rows: table.len(),
                    pushdowns: query
                        .predicates_for(rel)
                        .iter()
                        .map(|p| p.to_string())
                        .collect(),
                })
            })
            .collect::<PlanResult<Vec<_>>>()?;
        Ok(PlanExplain {
            kind,
            path,
            tractable,
            scans: signature.as_ref().map(|s| s.scan_count()),
            signature: signature.map(|s| s.to_string()),
            join_order,
            scan_details,
            policy: match path {
                ExplainPath::Fallback => self.approx_policy,
                ExplainPath::Safe => None,
            },
            uses_fds: self.use_fds,
        })
    }

    /// Executes `query` with the chosen plan kind and reports timings. When
    /// an approximation policy is set (see
    /// [`with_approx_policy`](Self::with_approx_policy)) and the query has
    /// no safe plan, the planner falls back to the intensional evaluators
    /// instead of erroring, and the report's `approx` field is `Some`.
    ///
    /// # Errors
    /// Fails with [`PlanError::UnsafeQuery`] if the query has no safe plan
    /// and no approximation policy is set, if a table is missing, or (for
    /// [`PlanKind::MystiqLogSpace`]) the aggregation overflows.
    pub fn execute(&self, query: &ConjunctiveQuery, kind: PlanKind) -> PlanResult<PlanReport> {
        let obs_ctx = ExecContext::unbounded().with_obs_opt(self.obs.as_ref());
        let _span = obs_ctx.span_with("plan", kind.to_string());
        let report = match self.execute_exact(query, kind.clone()) {
            Err(PlanError::UnsafeQuery { .. }) if self.approx_policy.is_some() => {
                self.execute_fallback(query, kind)
            }
            other => other,
        }?;
        obs_ctx.tally(Counter::AnswerRows, report.distinct_tuples as u64);
        Ok(report)
    }

    fn execute_exact(&self, query: &ConjunctiveQuery, kind: PlanKind) -> PlanResult<PlanReport> {
        let fds = self.fds();
        // Span-only context: the plans carry their own governed contexts; this
        // one just brackets the planner's two phases in the trace.
        let obs_ctx = ExecContext::unbounded().with_obs_opt(self.obs.as_ref());
        match &kind {
            PlanKind::Lazy => {
                let mut plan = LazyPlan::build(query, &fds, self.catalog)?;
                if let Some(gov) = &self.governor {
                    plan = plan.with_governor(gov.clone());
                }
                if let Some(pool) = &self.pool {
                    plan = plan.with_pool(*pool);
                }
                if let Some(obs) = &self.obs {
                    plan = plan.with_obs(obs.clone());
                }
                let span = obs_ctx.span("plan.tuples");
                let start = Instant::now();
                let answer = plan.answer_tuples(self.catalog)?;
                let tuple_time = start.elapsed();
                drop(span);
                let span = obs_ctx.span("plan.confidence");
                let start = Instant::now();
                let confidences = plan.confidences(&answer)?;
                let confidence_time = start.elapsed();
                drop(span);
                Ok(PlanReport {
                    kind,
                    answer_tuples: Some(answer.len()),
                    distinct_tuples: confidences.len(),
                    confidences,
                    tuple_time,
                    confidence_time,
                    scans: Some(plan.scans()),
                    signature: Some(plan.signature().clone()),
                    approx: None,
                })
            }
            PlanKind::Eager => {
                let mut plan = EagerPlan::build(query, &fds)?;
                if let Some(gov) = &self.governor {
                    plan = plan.with_governor(gov.clone());
                }
                if let Some(pool) = &self.pool {
                    plan = plan.with_pool(*pool);
                }
                if let Some(obs) = &self.obs {
                    plan = plan.with_obs(obs.clone());
                }
                // Eager plans fuse tuple and confidence computation into the
                // per-node aggregations — one phase span covers both.
                let span = obs_ctx.span("plan.tuples");
                let start = Instant::now();
                let confidences = plan.execute(self.catalog)?;
                let total = start.elapsed();
                drop(span);
                Ok(PlanReport {
                    kind,
                    answer_tuples: None,
                    distinct_tuples: confidences.len(),
                    confidences,
                    tuple_time: total,
                    confidence_time: Duration::ZERO,
                    scans: None,
                    signature: None,
                    approx: None,
                })
            }
            PlanKind::Hybrid(pushed) => {
                let pushed_refs: Vec<&str> = pushed.iter().map(|s| s.as_str()).collect();
                let mut plan = HybridPlan::build(query, &fds, self.catalog, &pushed_refs)?;
                if let Some(gov) = &self.governor {
                    plan = plan.with_governor(gov.clone());
                }
                if let Some(pool) = &self.pool {
                    plan = plan.with_pool(*pool);
                }
                if let Some(obs) = &self.obs {
                    plan = plan.with_obs(obs.clone());
                }
                let span = obs_ctx.span("plan.tuples");
                let start = Instant::now();
                let answer = plan.answer_tuples(self.catalog)?;
                let tuple_time = start.elapsed();
                drop(span);
                let span = obs_ctx.span("plan.confidence");
                let start = Instant::now();
                let mut operator = match &self.pool {
                    Some(pool) => {
                        pdb_conf::ConfidenceOperator::with_pool(plan.top_signature().clone(), *pool)
                    }
                    None => pdb_conf::ConfidenceOperator::new(plan.top_signature().clone()),
                };
                if let Some(gov) = &self.governor {
                    operator = operator.with_governor(gov.clone());
                }
                if let Some(obs) = &self.obs {
                    operator = operator.with_obs(obs.clone());
                }
                let confidences = operator
                    .compute(&answer, pdb_conf::Strategy::Auto)
                    .map_err(PlanError::from)?;
                let confidence_time = start.elapsed();
                drop(span);
                Ok(PlanReport {
                    kind,
                    answer_tuples: Some(answer.len()),
                    distinct_tuples: confidences.len(),
                    confidences,
                    tuple_time,
                    confidence_time,
                    scans: Some(plan.top_signature().scan_count()),
                    signature: Some(plan.top_signature().clone()),
                    approx: None,
                })
            }
            PlanKind::Mystiq | PlanKind::MystiqLogSpace => {
                // The extensional comparators stay ungoverned internally;
                // the governor is still observed once on entry.
                ExecContext::from_governor(self.governor.as_ref()).checkpoint(
                    Stage::Plan,
                    "plan.enter",
                    0,
                )?;
                let aggregation = if kind == PlanKind::MystiqLogSpace {
                    ProbAggregation::MystiqLog
                } else {
                    ProbAggregation::Stable
                };
                let plan = SafePlan::build_with_aggregation(query, &fds, aggregation)?;
                let span = obs_ctx.span("plan.tuples");
                let start = Instant::now();
                let confidences = plan.execute(self.catalog)?;
                let total = start.elapsed();
                drop(span);
                Ok(PlanReport {
                    kind,
                    answer_tuples: None,
                    distinct_tuples: confidences.len(),
                    confidences,
                    tuple_time: total,
                    confidence_time: Duration::ZERO,
                    scans: None,
                    signature: None,
                    approx: None,
                })
            }
        }
    }

    /// The unsafe-query path: lazy joins, then read-once factorization and
    /// (policy permitting) anytime dissociation bounds on the per-tuple
    /// lineage. The requested plan kind is recorded unchanged in the report
    /// so callers can see which exact family was attempted.
    fn execute_fallback(&self, query: &ConjunctiveQuery, kind: PlanKind) -> PlanResult<PlanReport> {
        let policy = self
            .approx_policy
            .expect("fallback runs only with a policy");
        let mut plan =
            FallbackPlan::build(query, self.catalog, policy)?.with_seed(self.approx_seed);
        if let Some(gov) = &self.governor {
            plan = plan.with_governor(gov.clone());
        }
        if let Some(pool) = &self.pool {
            plan = plan.with_pool(*pool);
        }
        if let Some(budget) = self.frontier_budget {
            plan = plan.with_frontier_budget(budget);
        }
        if let Some(obs) = &self.obs {
            plan = plan.with_obs(obs.clone());
        }
        let obs_ctx = ExecContext::unbounded().with_obs_opt(self.obs.as_ref());
        let span = obs_ctx.span("plan.tuples");
        let start = Instant::now();
        let answer = plan.answer_tuples(self.catalog)?;
        let tuple_time = start.elapsed();
        drop(span);
        let span = obs_ctx.span("plan.confidence");
        let start = Instant::now();
        let approx = plan.confidences(&answer)?;
        let confidence_time = start.elapsed();
        drop(span);
        let confidences: ConfidenceResult = approx
            .iter()
            .map(|t| (t.tuple.clone(), t.value()))
            .collect();
        Ok(PlanReport {
            kind,
            answer_tuples: Some(answer.len()),
            distinct_tuples: confidences.len(),
            confidences,
            tuple_time,
            confidence_time,
            scans: None,
            signature: None,
            approx: Some(approx),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_exec::fixtures::{fig1_catalog, fig1_catalog_with_keys};
    use pdb_query::cq::{intro_query_q, intro_query_q_prime};

    #[test]
    fn all_plan_kinds_agree_on_the_intro_query() {
        let catalog = fig1_catalog_with_keys();
        let planner = Planner::new(&catalog);
        let q = intro_query_q();
        let kinds = [
            PlanKind::Lazy,
            PlanKind::Eager,
            PlanKind::Hybrid(vec!["Item".to_string()]),
            PlanKind::Mystiq,
        ];
        for kind in kinds {
            let report = planner.execute(&q, kind.clone()).unwrap();
            assert_eq!(report.distinct_tuples, 1, "{kind}");
            assert!((report.confidences[0].1 - 0.0028).abs() < 1e-9, "{kind}");
        }
    }

    #[test]
    fn planner_without_fds_reports_more_scans() {
        let catalog = fig1_catalog_with_keys();
        let q = intro_query_q();
        let with_fds = Planner::new(&catalog).execute(&q, PlanKind::Lazy).unwrap();
        let without = Planner::without_fds(&catalog)
            .execute(&q, PlanKind::Lazy)
            .unwrap();
        assert!(without.scans.unwrap() > with_fds.scans.unwrap());
        assert!((with_fds.confidences[0].1 - without.confidences[0].1).abs() < 1e-9);
    }

    #[test]
    fn tractability_depends_on_fds() {
        let with_keys = fig1_catalog_with_keys();
        let without_keys = fig1_catalog();
        let q = intro_query_q_prime();
        assert!(Planner::new(&with_keys).is_tractable(&q));
        assert!(!Planner::new(&without_keys).is_tractable(&q));
        assert!(Planner::new(&without_keys).signature(&q).is_err());
        assert!(matches!(
            Planner::new(&without_keys).execute(&q, PlanKind::Lazy),
            Err(PlanError::UnsafeQuery { .. })
        ));
    }

    #[test]
    fn policy_falls_back_on_unsafe_queries_and_leaves_safe_ones_untouched() {
        let without_keys = fig1_catalog();
        let q = intro_query_q_prime();
        // With a policy the unsafe query produces brackets instead of erroring.
        let planner =
            Planner::new(&without_keys).with_approx_policy(ApproxPolicy::Bounds { eps: 1e-9 });
        let report = planner.execute(&q, PlanKind::Lazy).unwrap();
        let brackets = report.approx.as_ref().unwrap();
        assert_eq!(brackets.len(), 1);
        assert!(brackets[0].lo <= 0.0028 + 1e-12 && 0.0028 <= brackets[0].hi + 1e-12);
        // A safe query under the same policy is bitwise-identical to the
        // policy-free planner: the fallback never runs.
        let exact = Planner::new(&without_keys)
            .execute(&intro_query_q(), PlanKind::Lazy)
            .unwrap();
        let with_policy = planner.execute(&intro_query_q(), PlanKind::Lazy).unwrap();
        assert!(with_policy.approx.is_none());
        assert_eq!(
            exact.confidences[0].1.to_bits(),
            with_policy.confidences[0].1.to_bits()
        );
    }

    #[test]
    fn report_exposes_timings_and_counts() {
        let catalog = fig1_catalog();
        let planner = Planner::new(&catalog);
        let report = planner.execute(&intro_query_q(), PlanKind::Lazy).unwrap();
        assert_eq!(report.answer_tuples, Some(2));
        assert_eq!(report.distinct_tuples, 1);
        assert!(report.total_time() >= report.confidence_time);
        assert!(report.signature.is_some());
        assert_eq!(report.kind.to_string(), "lazy");
        assert_eq!(
            PlanKind::Hybrid(vec!["Item".into()]).to_string(),
            "hybrid(Item)"
        );
    }
}
