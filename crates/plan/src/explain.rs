//! EXPLAIN: the planner's decision procedure as data, without executing.
//!
//! [`Planner::explain`](crate::Planner::explain) runs exactly the checks the
//! execute path runs — FD-reduct hierarchy, signature derivation, greedy join
//! ordering, fallback eligibility — and reports what *would* happen: which
//! plan family, safe or intensional-fallback path, the join order, each
//! relation's storage backing and pushed-down predicates, and the policy in
//! force. The output is plain data so callers (the server's
//! `"explain": "plan"` mode, CLIs, tests) can render it however they like.

use crate::PlanKind;
use pdb_conf::ApproxPolicy;

/// Which evaluation path the planner would take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainPath {
    /// The query has a safe plan: exact confidences via the chosen family.
    Safe,
    /// No safe plan, but an [`ApproxPolicy`] is set: lazy joins plus the
    /// intensional chain (read-once factorization, then anytime dissociation
    /// bounds when the policy allows them).
    Fallback,
}

impl ExplainPath {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ExplainPath::Safe => "safe",
            ExplainPath::Fallback => "fallback",
        }
    }
}

/// One scanned relation in the plan: its position in the join order, its
/// physical backing, and the predicates the scan will push down.
#[derive(Debug, Clone)]
pub struct ExplainScan {
    /// Relation name.
    pub relation: String,
    /// Physical backing: `"row"` or `"columnar"`.
    pub backing: &'static str,
    /// Base-table row count (the optimizer's size input).
    pub rows: usize,
    /// Predicates evaluated inside the scan, rendered `Rel.attr op const`.
    pub pushdowns: Vec<String>,
}

/// The planner's explained decision for one (query, plan-kind) pair.
#[derive(Debug, Clone)]
pub struct PlanExplain {
    /// The requested plan family.
    pub kind: PlanKind,
    /// Safe plan or intensional fallback.
    pub path: ExplainPath,
    /// Whether the query is tractable (has a hierarchical FD-reduct) under
    /// the dependencies the planner uses.
    pub tractable: bool,
    /// The top-level confidence-operator signature (safe path only),
    /// rendered like `(Cust (Ord Item*)*)*`.
    pub signature: Option<String>,
    /// Number of scans the confidence operator needs (safe path only).
    pub scans: Option<usize>,
    /// The greedy join order over the scanned relations.
    pub join_order: Vec<String>,
    /// Per-relation scan details, in join order.
    pub scan_details: Vec<ExplainScan>,
    /// The approximation policy the fallback would run under (`None` when no
    /// policy is set or the safe path makes it irrelevant).
    pub policy: Option<ApproxPolicy>,
    /// Whether declared functional dependencies were used to refine the
    /// signature.
    pub uses_fds: bool,
}

impl PlanExplain {
    /// A compact single-string rendering, one clause per line — handy for
    /// logs and CLI output. Wire formats should instead read the fields.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("plan: {} ({})\n", self.kind, self.path.name()));
        out.push_str(&format!(
            "tractable: {} (fds: {})\n",
            self.tractable, self.uses_fds
        ));
        if let Some(sig) = &self.signature {
            out.push_str(&format!("signature: {sig}\n"));
        }
        if let Some(scans) = self.scans {
            out.push_str(&format!("scans: {scans}\n"));
        }
        if let Some(policy) = &self.policy {
            out.push_str(&format!("policy: {policy:?}\n"));
        }
        out.push_str(&format!("join order: {}\n", self.join_order.join(" ⋈ ")));
        for scan in &self.scan_details {
            out.push_str(&format!(
                "  scan {} [{}] rows={}",
                scan.relation, scan.backing, scan.rows
            ));
            if !scan.pushdowns.is_empty() {
                out.push_str(&format!(" where {}", scan.pushdowns.join(" and ")));
            }
            out.push('\n');
        }
        out
    }
}
