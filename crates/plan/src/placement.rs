//! Operator placement rules (Section V.B, Example V.6).
//!
//! A probability-computation operator can be placed on top of any node of a
//! plan. Its signature is obtained from the query signature by
//!
//! 1. replacing the parts already aggregated by operators below the node with
//!    their leftmost table names,
//! 2. dropping the tables that do not occur in the subplan, and
//! 3. splitting propagation (concatenation) steps that are not yet valid —
//!    a step `αβ` is valid only if the subplan contains all tables of the
//!    *minimal cover* of `tables(α) ∪ tables(β)` in the query signature.
//!
//! The result is a list of independent operator signatures such as
//! `[Cust*, Ord*]` for the plan-(c) placement of Example V.6.

use std::collections::BTreeSet;

use pdb_query::signature::{minimal_cover, signature_of_tree};
use pdb_query::{FdSet, QueryResult, QueryTree, Signature};

/// Placement analysis for one query: the query tree, the dependencies used to
/// refine signatures, and the derived full query signature.
#[derive(Debug, Clone)]
pub struct PlacementContext {
    tree: QueryTree,
    fds: FdSet,
    signature: Signature,
}

impl PlacementContext {
    /// Builds the context from the FD-reduct's tree and dependency set.
    pub fn new(tree: QueryTree, fds: FdSet) -> PlacementContext {
        let signature = signature_of_tree(&tree, &fds);
        PlacementContext {
            tree,
            fds,
            signature,
        }
    }

    /// The full query signature.
    pub fn query_signature(&self) -> &Signature {
        &self.signature
    }

    /// The signatures of the operator to place at a node whose subplan
    /// contains exactly `present` tables (with live lineage columns), given
    /// that the groups in `reduced_groups` have already been aggregated by
    /// operators below (each group is represented by the leftmost table of
    /// its minimal cover).
    ///
    /// # Errors
    /// Fails if a referenced table is not part of the query.
    pub fn operator_signatures(
        &self,
        present: &BTreeSet<String>,
        reduced_groups: &[BTreeSet<String>],
    ) -> QueryResult<Vec<Signature>> {
        let mut sig = self.signature.clone();
        for group in reduced_groups {
            let cover = minimal_cover(&self.tree, &self.fds, group)?;
            let representative = cover.leftmost_table().to_string();
            sig = replace_smallest_starred_cover(&sig, group, &representative);
        }
        let Some(restricted) = sig.restrict_to_tables(present) else {
            return Ok(Vec::new());
        };
        let mut operators = self.split_invalid(&restricted, present);
        // Refinement from the end of Section V.B: a single-table operator
        // inherits the (FD-refined) signature of its leaf, so `[Cust*]`
        // becomes `[Cust]` when the key constraint makes the star redundant.
        for op in &mut operators {
            if let Signature::Star(inner) = op {
                if let Signature::Table(table) = inner.as_ref() {
                    let already_reduced = reduced_groups
                        .iter()
                        .any(|g| g.len() == 1 && g.contains(table));
                    if !already_reduced {
                        let single: BTreeSet<String> = [table.clone()].into_iter().collect();
                        if let Ok(cover) = minimal_cover(&self.tree, &self.fds, &single) {
                            *op = cover;
                        }
                    }
                }
            }
        }
        Ok(operators)
    }

    /// Splits propagation steps whose minimal cover is not yet fully present.
    fn split_invalid(&self, sig: &Signature, present: &BTreeSet<String>) -> Vec<Signature> {
        match sig {
            Signature::Table(_) => vec![sig.clone()],
            Signature::Star(inner) => {
                let parts = self.split_invalid(inner, present);
                if parts.len() == 1 {
                    vec![Signature::star(parts.into_iter().next().expect("len 1"))]
                } else {
                    // The aggregation above an invalid propagation cannot be
                    // performed either: keep only the split parts.
                    parts
                }
            }
            Signature::Concat(parts) => {
                let child_splits: Vec<Vec<Signature>> = parts
                    .iter()
                    .map(|p| self.split_invalid(p, present))
                    .collect();
                let all_single = child_splits.iter().all(|c| c.len() == 1);
                if all_single && self.concat_valid(sig, present) {
                    vec![Signature::concat(
                        child_splits.into_iter().map(|mut c| c.remove(0)).collect(),
                    )]
                } else {
                    child_splits.into_iter().flatten().collect()
                }
            }
        }
    }

    /// Whether the propagation step combining the tables of `sig` is valid:
    /// its minimal cover in the query signature only uses present tables.
    fn concat_valid(&self, sig: &Signature, present: &BTreeSet<String>) -> bool {
        let tables: BTreeSet<String> = sig.tables().into_iter().collect();
        match minimal_cover(&self.tree, &self.fds, &tables) {
            Ok(cover) => cover.tables().iter().all(|t| present.contains(t)),
            Err(_) => false,
        }
    }
}

/// Replaces the smallest starred subexpression (or bare leaf) containing all
/// tables of `group` by the bare `replacement` table.
fn replace_smallest_starred_cover(
    sig: &Signature,
    group: &BTreeSet<String>,
    replacement: &str,
) -> Signature {
    fn contains_all(sig: &Signature, group: &BTreeSet<String>) -> bool {
        group.iter().all(|t| sig.contains_table(t))
    }
    match sig {
        Signature::Table(r) => {
            if group.len() == 1 && group.contains(r) {
                Signature::table(replacement)
            } else {
                sig.clone()
            }
        }
        Signature::Star(inner) => {
            if !contains_all(sig, group) {
                return sig.clone();
            }
            // Prefer a deeper starred cover if one child region still holds
            // the whole group.
            let deeper = replace_smallest_starred_cover(inner, group, replacement);
            if &deeper != inner.as_ref() && smaller_cover_exists(inner, group) {
                Signature::star(deeper)
            } else {
                Signature::table(replacement)
            }
        }
        Signature::Concat(parts) => Signature::concat(
            parts
                .iter()
                .map(|p| {
                    if contains_all(p, group) {
                        replace_smallest_starred_cover(p, group, replacement)
                    } else {
                        p.clone()
                    }
                })
                .collect(),
        ),
    }
}

/// Whether some strict subexpression of `sig` that is a star or a single
/// table still contains every table of `group`.
fn smaller_cover_exists(sig: &Signature, group: &BTreeSet<String>) -> bool {
    let contains_all = |s: &Signature| group.iter().all(|t| s.contains_table(t));
    match sig {
        Signature::Table(_) => group.len() == 1 && contains_all(sig),
        Signature::Star(_) => contains_all(sig),
        Signature::Concat(parts) => parts.iter().any(|p| match p {
            Signature::Table(_) | Signature::Star(_) => contains_all(p),
            Signature::Concat(_) => smaller_cover_exists(p, group),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_query::cq::intro_query_q;
    use pdb_query::fd::attr_set;
    use pdb_query::reduct::FdReduct;

    fn context(with_fds: bool) -> PlacementContext {
        let q = intro_query_q().boolean_version();
        let fds = if with_fds {
            FdSet::new(vec![
                pdb_query::FunctionalDependency::on("Ord", &["okey"], &["ckey", "odate"]),
                pdb_query::FunctionalDependency::on("Cust", &["ckey"], &["cname"]),
            ])
        } else {
            FdSet::empty()
        };
        let reduct = FdReduct::compute(&q, &fds);
        PlacementContext::new(reduct.tree().unwrap(), fds)
    }

    #[test]
    fn full_plan_placement_keeps_the_query_signature() {
        let ctx = context(false);
        assert_eq!(ctx.query_signature().to_string(), "(Cust* (Ord* Item*)*)*");
        let ops = ctx
            .operator_signatures(&attr_set(&["Cust", "Ord", "Item"]), &[])
            .unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].to_string(), "(Cust* (Ord* Item*)*)*");
    }

    #[test]
    fn placement_below_the_item_join_splits_the_propagation() {
        // Example V.6, plan (c): at the node joining only Cust and Ord the
        // propagation step is invalid (Item, in the minimal cover of
        // {Cust, Ord}, is missing) and the operator splits into [Cust*, Ord*].
        let ctx = context(false);
        let ops = ctx
            .operator_signatures(&attr_set(&["Cust", "Ord"]), &[])
            .unwrap();
        let rendered: Vec<String> = ops.iter().map(|s| s.to_string()).collect();
        assert_eq!(rendered, vec!["Cust*".to_string(), "Ord*".to_string()]);
    }

    #[test]
    fn placement_over_ord_item_subplan_is_valid() {
        // Example V.6, plan (b): the node joining Ord and Item contains the
        // full minimal cover of {Ord, Item}, so the operator is
        // [(Ord*Item*)*].
        let ctx = context(false);
        let ops = ctx
            .operator_signatures(&attr_set(&["Ord", "Item"]), &[])
            .unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].to_string(), "(Ord* Item*)*");
    }

    #[test]
    fn reduced_groups_update_ancestor_operators() {
        // Example V.6, plan (a): after [Item*], [Ord*] and [Cust*] have run
        // below, the operator after Ord ⋈ Item is [(Ord Item)*]; after the
        // subsequent [(Ord Item)*] the top operator becomes [(Cust Ord)*].
        let ctx = context(false);
        let singles = [attr_set(&["Item"]), attr_set(&["Ord"]), attr_set(&["Cust"])];
        let ops = ctx
            .operator_signatures(&attr_set(&["Ord", "Item"]), &singles)
            .unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].to_string(), "(Ord Item)*");

        let mut reduced = singles.to_vec();
        reduced.push(attr_set(&["Ord", "Item"]));
        let ops = ctx
            .operator_signatures(&attr_set(&["Cust", "Ord", "Item"]), &reduced)
            .unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].to_string(), "(Cust Ord)*");
    }

    #[test]
    fn fds_refine_placed_operators() {
        // With the TPC-H keys, [Cust*] becomes [Cust] and [(Ord*Item*)*]
        // becomes [(Ord Item*)*] (end of Section V.B).
        let ctx = context(true);
        let ops = ctx
            .operator_signatures(&attr_set(&["Ord", "Item"]), &[])
            .unwrap();
        assert_eq!(ops[0].to_string(), "(Ord Item*)*");
        let ops = ctx.operator_signatures(&attr_set(&["Cust"]), &[]).unwrap();
        assert_eq!(ops[0].to_string(), "Cust");
    }

    #[test]
    fn empty_restriction_yields_no_operators() {
        let ctx = context(false);
        assert!(ctx
            .operator_signatures(&attr_set(&["Nation"]), &[])
            .unwrap()
            .is_empty());
    }
}
