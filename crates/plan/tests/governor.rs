//! PR 6 governor integration tests.
//!
//! The load-bearing property: governance checkpoints only ever STOP work,
//! they never reorder it. A governed run that is not interrupted is
//! bitwise-identical to the ungoverned run at every thread count and both
//! storage backings; an interrupted run returns a structured error naming
//! its stage, leaves the pool reusable, and an immediate re-run reproduces
//! the baseline bit for bit.

use std::time::Duration;

use pdb_exec::{fixtures, ops, ExecContext, ExecError};
use pdb_par::Pool;
use pdb_query::{ConjunctiveQuery, FdSet};
use pdb_storage::Catalog;
use pdb_tpch::{
    probabilistic_catalog, probabilistic_catalog_columnar, tpch_query, TpchData, TpchScale,
};
use sprout_plan::lazy::LazyPlan;
use sprout_plan::{GovernorBuilder, PlanError, PlanKind, Planner, SproutError};

const POOL_SIZES: [usize; 4] = [1, 2, 4, 8];

fn q1() -> ConjunctiveQuery {
    tpch_query("1")
        .expect("catalogue has Q1")
        .query
        .expect("Q1 is conjunctive")
}

fn tiny_catalogs() -> (Catalog, Catalog) {
    let data = TpchData::generate(TpchScale::tiny());
    let row = probabilistic_catalog(&data, 1).expect("row catalog");
    let col = probabilistic_catalog_columnar(&data, 1).expect("columnar catalog");
    (row, col)
}

fn assert_bitwise_eq(
    baseline: &[(pdb_storage::Tuple, f64)],
    got: &[(pdb_storage::Tuple, f64)],
    context: &str,
) {
    assert_eq!(baseline.len(), got.len(), "{context}: row counts differ");
    for ((t1, p1), (t2, p2)) in baseline.iter().zip(got.iter()) {
        assert_eq!(t1, t2, "{context}: tuples differ");
        assert_eq!(
            p1.to_bits(),
            p2.to_bits(),
            "{context}: confidences differ on {t1}: {p1} vs {p2}"
        );
    }
}

#[test]
fn governed_happy_path_is_bitwise_identical_across_threads_and_backings() {
    let q = q1();
    let (row, col) = tiny_catalogs();
    let fds = FdSet::from_catalog_decls(&row.fds());
    let baseline = LazyPlan::build(&q, &fds, &row)
        .unwrap()
        .with_pool(Pool::sequential())
        .execute(&row)
        .unwrap();
    for catalog in [&row, &col] {
        for threads in POOL_SIZES {
            let gov = GovernorBuilder::new()
                .deadline(Duration::from_secs(3600))
                .memory_budget(1 << 30)
                .build();
            let governed = LazyPlan::build(&q, &fds, catalog)
                .unwrap()
                .with_pool(Pool::new(threads))
                .with_governor(gov.clone())
                .execute(catalog)
                .unwrap();
            assert_bitwise_eq(&baseline, &governed, &format!("{threads} threads"));
            assert!(gov.checkpoints_seen() > 0, "governor saw no checkpoints");
        }
    }
}

/// The satellite-3 exhaustive sweep: cancel at *every* checkpoint index of a
/// small Q1 run, at every pool size. Every interruption must surface as
/// `Cancelled`, leave the pool reusable, and an immediate re-run on the same
/// plan must be bitwise-equal to the uninterrupted baseline.
#[test]
fn cancellation_at_every_checkpoint_of_a_small_q1_run() {
    let q = q1();
    let (row, _) = tiny_catalogs();
    let fds = FdSet::from_catalog_decls(&row.fds());
    for threads in POOL_SIZES {
        let plan = LazyPlan::build(&q, &fds, &row)
            .unwrap()
            .with_pool(Pool::new(threads));
        let baseline = plan.clone().execute(&row).unwrap();

        // Count the checkpoints of one uninterrupted governed run.
        let counter = GovernorBuilder::new().build();
        let governed = plan
            .clone()
            .with_governor(counter.clone())
            .execute(&row)
            .unwrap();
        assert_bitwise_eq(&baseline, &governed, &format!("{threads} threads, counter"));
        let total = counter.checkpoints_seen();
        assert!(total > 0, "Q1 run saw no checkpoints at {threads} threads");

        for k in 1..=total {
            let gov = GovernorBuilder::new().cancel_after_checkpoints(k).build();
            let interrupted = plan.clone().with_governor(gov).execute(&row);
            match interrupted {
                Err(PlanError::Governed(SproutError::Cancelled { .. })) => {}
                other => panic!(
                    "{threads} threads, checkpoint {k}/{total}: expected Cancelled, got {other:?}"
                ),
            }
            // The pool survived the interruption: the very same plan value
            // (same pool handle) reproduces the baseline bit for bit.
            let rerun = plan.clone().execute(&row).unwrap();
            assert_bitwise_eq(
                &baseline,
                &rerun,
                &format!("{threads} threads, re-run after cancel at {k}"),
            );
        }
    }
}

#[test]
fn pre_cancelled_governor_interrupts_at_the_first_checkpoint() {
    let q = q1();
    let (row, _) = tiny_catalogs();
    let fds = FdSet::from_catalog_decls(&row.fds());
    let gov = GovernorBuilder::new().build();
    gov.cancel();
    let result = LazyPlan::build(&q, &fds, &row)
        .unwrap()
        .with_governor(gov)
        .execute(&row);
    match result {
        Err(PlanError::Governed(SproutError::Cancelled { .. })) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn expired_deadline_interrupts_with_elapsed_and_budget() {
    let q = q1();
    let (row, _) = tiny_catalogs();
    let fds = FdSet::from_catalog_decls(&row.fds());
    let gov = GovernorBuilder::new().deadline(Duration::ZERO).build();
    let result = LazyPlan::build(&q, &fds, &row)
        .unwrap()
        .with_governor(gov)
        .execute(&row);
    match result {
        Err(PlanError::Governed(SproutError::DeadlineExceeded {
            elapsed, deadline, ..
        })) => {
            assert!(elapsed >= deadline);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // An ungoverned re-run on the same catalog is unaffected.
    let rerun = LazyPlan::build(&q, &fds, &row).unwrap().execute(&row);
    assert!(rerun.is_ok());
}

/// Memory-budget exhaustion on the partitioned join path: the governed
/// context charges the scatter buffer and the output arenas before
/// allocating them, so a one-byte budget fails deterministically.
#[test]
fn memory_budget_exhaustion_interrupts_the_partitioned_join() {
    let catalog = fixtures::fig1_catalog();
    let cust = catalog.table("Cust").unwrap();
    let ord = catalog.table("Ord").unwrap();
    let left = ops::scan(&cust, "Cust", &["ckey".into(), "cname".into()]).unwrap();
    let right = ops::scan(&ord, "Ord", &["okey".into(), "ckey".into()]).unwrap();
    let gov = GovernorBuilder::new().memory_budget(1).build();
    let ctx = ExecContext::governed(&gov);
    // Pool::new(2) bypasses the for_items size gate, forcing the
    // partitioned (accounting) join path even on the Fig. 1 toy tables.
    let result = ops::natural_join_ctx(&left, &right, &Pool::new(2), &ctx);
    match result {
        Err(ExecError::Governed(SproutError::MemoryBudgetExceeded {
            requested, budget, ..
        })) => {
            assert!(requested > budget);
        }
        other => panic!("expected MemoryBudgetExceeded, got {other:?}"),
    }
    // The same join under an unbounded context still works.
    let ok = ops::natural_join_ctx(&left, &right, &Pool::new(2), &ExecContext::unbounded());
    assert!(ok.is_ok());
}

#[test]
fn planner_facade_threads_the_governor_through_every_plan_kind() {
    let catalog = fixtures::fig1_catalog_with_keys();
    let q = pdb_query::cq::intro_query_q();
    for kind in [
        PlanKind::Lazy,
        PlanKind::Eager,
        PlanKind::Hybrid(vec!["Item".to_string()]),
        PlanKind::Mystiq,
    ] {
        // Uninterrupted: governed result matches the ungoverned one.
        let baseline = Planner::new(&catalog).execute(&q, kind.clone()).unwrap();
        let gov = GovernorBuilder::new().build();
        let governed = Planner::new(&catalog)
            .with_governor(gov.clone())
            .execute(&q, kind.clone())
            .unwrap();
        assert_bitwise_eq(
            &baseline.confidences,
            &governed.confidences,
            &format!("{kind}"),
        );
        assert!(
            gov.checkpoints_seen() > 0,
            "{kind}: governor saw no checkpoints"
        );
        // Pre-cancelled: every plan kind observes the token.
        let cancelled = GovernorBuilder::new().build();
        cancelled.cancel();
        let result = Planner::new(&catalog)
            .with_governor(cancelled)
            .execute(&q, kind.clone());
        match result {
            Err(PlanError::Governed(SproutError::Cancelled { .. })) => {}
            other => panic!("{kind}: expected Cancelled, got {other:?}"),
        }
    }
}
