//! PR 6 fault-injection property tests (compiled only with `--features
//! fault-inject`).
//!
//! Seeded [`FaultPlan::random`] draws pick a checkpoint site, an index, and
//! an action (panic / cancel / budget); the plan is installed and a governed
//! Q1 run executed at every pool size and both storage backings. The
//! properties:
//!
//! * a run whose fault fires surfaces a structured
//!   [`PlanError::Governed`] naming the interruption — or, for a `panic`
//!   fault on a sequential (caller-thread) code path, a plain panic that the
//!   test contains with `catch_unwind`; panic *isolation* is a property of
//!   `pdb-par` workers, not of inline loops;
//! * a run whose fault is never reached is bitwise-identical to the
//!   baseline;
//! * faults are one-shot, so an immediate re-run needs no cleanup and is
//!   always bitwise-identical to the baseline — nothing is poisoned.
//!
//! Everything lives in ONE `#[test]` because the installed fault plan is
//! process-global state; parallel test threads would race on it.
#![cfg(feature = "fault-inject")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use pdb_fault::{clear, install, FaultAction, FaultPlan};
use pdb_par::Pool;
use pdb_query::{ConjunctiveQuery, FdSet};
use pdb_storage::{Catalog, Tuple};
use pdb_tpch::{
    probabilistic_catalog, probabilistic_catalog_columnar, tpch_query, TpchData, TpchScale,
};
use proptest::prelude::*;
use sprout_plan::lazy::LazyPlan;
use sprout_plan::{GovernorBuilder, PlanError, SproutError};

/// Every checkpoint site the governed engine exposes (module docs of
/// `pdb_exec::ops`, `pdb_exec::columnar`, `pdb_conf::one_scan`).
const SITES: &[&str] = &[
    "scan.morsel",
    "scan.write",
    "scan.chunk",
    "scan.gather",
    "join.probe",
    "join.write",
    "project.write",
    "conf.bag",
];

/// Above the largest observed checkpoint count, so random indices also land
/// beyond the run (exercising the fault-never-fires path).
const MAX_INDEX: usize = 48;

const POOL_SIZES: [usize; 4] = [1, 2, 4, 8];

struct Workload {
    label: &'static str,
    catalog: Catalog,
    query: ConjunctiveQuery,
    fds: FdSet,
}

/// Q1 on both backings (scan/conf checkpoints; the columnar catalog also
/// exercises `scan.chunk`/`scan.gather`) plus the Fig. 1 intro join query
/// (`join.probe`/`join.write`/`project.write`).
fn workloads() -> &'static Vec<Workload> {
    static CELL: OnceLock<Vec<Workload>> = OnceLock::new();
    CELL.get_or_init(|| {
        let data = TpchData::generate(TpchScale::tiny());
        let q1 = tpch_query("1").unwrap().query.unwrap();
        let row = probabilistic_catalog(&data, 1).unwrap();
        let col = probabilistic_catalog_columnar(&data, 1).unwrap();
        let fig1 = pdb_exec::fixtures::fig1_catalog_with_keys();
        let intro = pdb_query::cq::intro_query_q();
        vec![
            Workload {
                label: "q1-row",
                fds: FdSet::from_catalog_decls(&row.fds()),
                catalog: row,
                query: q1.clone(),
            },
            Workload {
                label: "q1-columnar",
                fds: FdSet::from_catalog_decls(&col.fds()),
                catalog: col,
                query: q1,
            },
            Workload {
                label: "intro-join",
                fds: FdSet::from_catalog_decls(&fig1.fds()),
                catalog: fig1,
                query: intro,
            },
        ]
    })
}

fn assert_bitwise_eq(baseline: &[(Tuple, f64)], got: &[(Tuple, f64)], context: &str) {
    assert_eq!(baseline.len(), got.len(), "{context}: row counts differ");
    for ((t1, p1), (t2, p2)) in baseline.iter().zip(got.iter()) {
        assert_eq!(t1, t2, "{context}: tuples differ");
        assert_eq!(
            p1.to_bits(),
            p2.to_bits(),
            "{context}: confidences differ on {t1}"
        );
    }
}

fn governed_run(w: &Workload, threads: usize) -> Result<Vec<(Tuple, f64)>, PlanError> {
    LazyPlan::build(&w.query, &w.fds, &w.catalog)?
        .with_pool(Pool::new(threads))
        .with_governor(GovernorBuilder::new().build())
        .execute(&w.catalog)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn injected_faults_interrupt_cleanly_and_reruns_are_bitwise_identical(
        seed in 0u64..u64::MAX,
    ) {
        // Silence the default panic hook while injected panics unwind
        // through `catch_unwind`; restored before the property returns.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = catch_unwind(AssertUnwindSafe(|| check_seed(seed)));
        std::panic::set_hook(hook);
        if let Err(p) = outcome {
            std::panic::resume_unwind(p);
        }
    }
}

fn check_seed(seed: u64) {
    let plan = FaultPlan::random(seed, SITES, MAX_INDEX);
    let fault = plan.faults()[0].clone();
    for w in workloads() {
        for threads in POOL_SIZES {
            clear();
            let baseline = governed_run(w, threads)
                .unwrap_or_else(|e| panic!("{}: clean baseline failed: {e}", w.label));
            install(plan.clone());

            let ctx = format!(
                "{} @ {threads} threads, {:?}@{}:{}",
                w.label, fault.action, fault.site, fault.index
            );
            let outcome = catch_unwind(AssertUnwindSafe(|| governed_run(w, threads)));
            match outcome {
                // The fault never fired (index beyond this run, or a site
                // the workload does not reach): indistinguishable from an
                // uninterrupted run.
                Ok(Ok(result)) => assert_bitwise_eq(&baseline, &result, &ctx),
                // The fault fired: a structured interruption naming what
                // happened — never a torn result.
                Ok(Err(PlanError::Governed(g))) => match (fault.action, &g) {
                    (FaultAction::Cancel, SproutError::Cancelled { .. })
                    | (FaultAction::Budget, SproutError::MemoryBudgetExceeded { .. })
                    | (FaultAction::Panic, SproutError::WorkerPanic { .. }) => {}
                    other => panic!("{ctx}: action/error mismatch: {other:?}"),
                },
                Ok(Err(other)) => panic!("{ctx}: unstructured error: {other}"),
                // A panic fault on a sequential code path unwinds through
                // the caller; only the `panic` action may do that.
                Err(_) => assert!(
                    fault.action == FaultAction::Panic,
                    "{ctx}: non-panic fault escaped as a panic"
                ),
            }

            // One-shot: the immediate re-run needs no clearing and nothing
            // was poisoned — same pool size, same catalog, bitwise-equal.
            let rerun =
                governed_run(w, threads).unwrap_or_else(|e| panic!("{ctx}: re-run failed: {e}"));
            assert_bitwise_eq(&baseline, &rerun, &format!("{ctx} (re-run)"));
        }
    }
    clear();
}
