//! Property tests for the read-once factorization pass.
//!
//! Three angles:
//!
//! * **Soundness on arbitrary DNFs** — whenever [`factorize`] claims a
//!   read-once tree, its one-pass probability must equal the brute-force
//!   possible-worlds oracle ([`exact_probability`]), and the tree must
//!   mention every variable exactly once.
//! * **Completeness on known-read-once formulas** — a DNF *expanded from* a
//!   random read-once tree must factor back into a read-once form.
//! * **Blocked witnesses** — formulas embedding the path P4
//!   (`xy ∨ yz ∨ zu`, the canonical non-read-once pattern) must come back
//!   [`Factorization::Blocked`], with a witness that is itself entangled
//!   (every clause shares a variable with another).

use std::collections::BTreeMap;

use proptest::prelude::*;

use pdb_lineage::{exact_probability, factorize, Clause, Dnf, Factorization};
use pdb_storage::Variable;

fn probs_for(formula: &Dnf) -> BTreeMap<Variable, f64> {
    formula
        .variables()
        .into_iter()
        .map(|v| (v, 0.1 + 0.8 * ((v.0 * 7 % 11) as f64 / 11.0)))
        .collect()
}

fn dnf_from(clauses: &[Vec<u64>]) -> Dnf {
    let mut d = Dnf::empty();
    for c in clauses {
        d.add_clause(Clause::new(c.iter().map(|v| Variable(*v))));
    }
    d
}

/// A random read-once tree over fresh variables, returned as the pair
/// (equivalent DNF, number of leaves). `shape` drives the recursion
/// deterministically.
fn read_once_dnf(shape: &[u8], next: &mut u64, depth: usize) -> Dnf {
    if depth >= 3 || shape.is_empty() {
        let v = Variable(*next);
        *next += 1;
        return Dnf::var(v);
    }
    let arity = 2 + (shape[0] % 2) as usize;
    let children: Vec<Dnf> = (0..arity)
        .map(|i| read_once_dnf(&shape[(1 + i).min(shape.len())..], next, depth + 1))
        .collect();
    let mut it = children.into_iter();
    let first = it.next().unwrap();
    if shape[0].is_multiple_of(2) {
        it.fold(first, |acc, c| acc.or(&c))
    } else {
        it.fold(first, |acc, c| acc.and(&c))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary small DNFs: when the pass claims read-once, the one-pass
    /// evaluation equals the possible-worlds oracle and every variable
    /// appears exactly once in the tree.
    #[test]
    fn read_once_trees_agree_with_the_possible_worlds_oracle(
        clauses in proptest::collection::vec(
            proptest::collection::vec(0u64..8, 1..4), 1..6),
    ) {
        let dnf = dnf_from(&clauses);
        let probs = probs_for(&dnf);
        let want = exact_probability(&dnf, &probs);
        match factorize(&dnf) {
            Factorization::ReadOnce(tree) => {
                prop_assert_eq!(tree.leaf_count(), tree.variables().len(),
                    "read-once trees mention each variable once");
                let got = tree.probability(&probs);
                prop_assert!((got - want).abs() < 1e-12,
                    "tree gave {got}, oracle {want} for {dnf}");
            }
            Factorization::Constant(b) => {
                prop_assert_eq!(want, if b { 1.0 } else { 0.0 });
            }
            Factorization::Blocked(witness) => {
                // The witness is a sub-formula of the absorption-minimized
                // input: every one of its variables occurs in the input.
                let vars = dnf.variables();
                for v in witness.variables() {
                    prop_assert!(vars.contains(&v), "witness var {v:?} not in input");
                }
                prop_assert!(witness.len() >= 3,
                    "a blocked witness needs at least 3 entangled clauses");
            }
        }
    }

    /// DNFs expanded from random read-once trees always factor back:
    /// the pass is complete, not just sound.
    #[test]
    fn expansions_of_read_once_trees_factor_back(
        shape in proptest::collection::vec(0u8..=255, 1..12),
    ) {
        let mut next = 0u64;
        let dnf = read_once_dnf(&shape, &mut next, 0);
        let probs = probs_for(&dnf);
        let want = exact_probability(&dnf, &probs);
        match factorize(&dnf) {
            Factorization::ReadOnce(tree) => {
                let got = tree.probability(&probs);
                prop_assert!((got - want).abs() < 1e-12, "{dnf}: {got} vs {want}");
            }
            other => prop_assert!(false, "expected read-once for {dnf}, got {other:?}"),
        }
    }

    /// Embedding the path P4 over fresh variables into any read-once
    /// formula makes the result provably not read-once: the pass must say
    /// Blocked (never silently return a wrong tree).
    #[test]
    fn formulas_embedding_p4_are_blocked(
        shape in proptest::collection::vec(0u8..=255, 0..8),
        or_composition in proptest::bool::ANY,
    ) {
        let mut next = 100u64; // P4 below uses 0..4
        let harmless = read_once_dnf(&shape, &mut next, 0);
        let p4 = dnf_from(&[vec![0, 1], vec![1, 2], vec![2, 3]]);
        // ∨-composition keeps the components variable-disjoint, so the
        // blocked component is exactly the embedded P4; ∧-composition
        // distributes it into every clause.
        let dnf = if or_composition { p4.or(&harmless) } else { p4.and(&harmless) };
        match factorize(&dnf) {
            Factorization::Blocked(witness) => {
                let vars = witness.variables();
                prop_assert!(vars.iter().any(|v| v.0 < 4),
                    "witness {witness} must involve the P4 core");
            }
            other => prop_assert!(false, "expected blocked for {dnf}, got {other:?}"),
        }
    }
}
