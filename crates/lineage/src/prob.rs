//! Exact probability of DNF lineage.
//!
//! `Pr[φ]` is #P-complete in general (paper, Section II.A); this module
//! implements it anyway — by Shannon expansion — so that the efficient,
//! signature-driven operators of `pdb-conf` have an oracle to be validated
//! against. The expansion picks the most frequent variable first, which keeps
//! the recursion shallow on the grid-structured lineage produced by join
//! queries, but the worst case remains exponential: keep inputs small.

use std::collections::BTreeMap;

use pdb_storage::Variable;

use crate::dnf::Dnf;

/// Probability of the disjunction of independent events: `1 − Π (1 − p_i)`.
///
/// This is the `prob` aggregate of Fig. 5; it is only correct when the events
/// are pairwise independent, which the paper's operator guarantees by
/// partitioning variables according to the query signature.
pub fn independent_or(probs: impl IntoIterator<Item = f64>) -> f64 {
    let mut none_true = 1.0;
    for p in probs {
        none_true *= 1.0 - p;
    }
    1.0 - none_true
}

/// Probability of the conjunction of independent events: `Π p_i`.
pub fn independent_and(probs: impl IntoIterator<Item = f64>) -> f64 {
    probs.into_iter().product()
}

/// Exact probability of a DNF formula by Shannon expansion.
///
/// Variables missing from `probs` are treated as having probability zero,
/// which matches the possible-world semantics (a tuple that cannot exist).
pub fn exact_probability(formula: &Dnf, probs: &BTreeMap<Variable, f64>) -> f64 {
    if formula.is_false() {
        return 0.0;
    }
    if formula.is_true() {
        return 1.0;
    }
    // Pick the variable occurring in the most clauses: conditioning on it
    // simplifies the formula the fastest.
    let mut counts: BTreeMap<Variable, usize> = BTreeMap::new();
    for clause in formula.clauses() {
        for v in clause.vars() {
            *counts.entry(*v).or_insert(0) += 1;
        }
    }
    let (&var, _) = counts
        .iter()
        .max_by_key(|(_, c)| **c)
        .expect("non-trivial formula has at least one variable");
    let p = probs.get(&var).copied().unwrap_or(0.0);
    let if_true = exact_probability(&formula.assign(var, true), probs);
    let if_false = exact_probability(&formula.assign(var, false), probs);
    p * if_true + (1.0 - p) * if_false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnf::Clause;
    use proptest::prelude::*;

    fn v(i: u64) -> Variable {
        Variable(i)
    }

    fn probs(pairs: &[(u64, f64)]) -> BTreeMap<Variable, f64> {
        pairs.iter().map(|(i, p)| (v(*i), *p)).collect()
    }

    #[test]
    fn independent_combinators() {
        assert!((independent_or([0.1, 0.2]) - 0.28).abs() < 1e-12);
        assert!((independent_and([0.1, 0.2]) - 0.02).abs() < 1e-12);
        assert_eq!(independent_or(std::iter::empty::<f64>()), 0.0);
        assert_eq!(independent_and(std::iter::empty::<f64>()), 1.0);
    }

    #[test]
    fn single_variable_probability() {
        let d = Dnf::var(v(1));
        assert!((exact_probability(&d, &probs(&[(1, 0.3)])) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn false_and_true_formulas() {
        assert_eq!(exact_probability(&Dnf::empty(), &probs(&[])), 0.0);
        let taut = Dnf::new([Clause::empty()]);
        assert_eq!(exact_probability(&taut, &probs(&[])), 1.0);
    }

    #[test]
    fn intro_example_confidence() {
        // φ = x1 y1 z1 ∨ x1 y1 z2 with the Fig. 1 probabilities: the paper's
        // worked example yields 0.1 · 0.1 · (1 − 0.9 · 0.8) = 0.0028.
        let d = Dnf::new([
            Clause::new([v(1), v(10), v(100)]),
            Clause::new([v(1), v(10), v(101)]),
        ]);
        let p = probs(&[(1, 0.1), (10, 0.1), (100, 0.1), (101, 0.2)]);
        assert!((exact_probability(&d, &p) - 0.0028).abs() < 1e-12);
    }

    #[test]
    fn unknown_variables_have_probability_zero() {
        let d = Dnf::var(v(42));
        assert_eq!(exact_probability(&d, &probs(&[])), 0.0);
    }

    #[test]
    fn non_independent_clauses_are_handled_exactly() {
        // x ∨ xy has probability Pr[x]; the naive independent-or over clause
        // probabilities would get this wrong.
        let d = Dnf::new([Clause::new([v(1)]), Clause::new([v(1), v(2)])]);
        let p = probs(&[(1, 0.4), (2, 0.9)]);
        assert!((exact_probability(&d, &p) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn hard_query_shape_is_still_exact() {
        // The lineage shape of the prototypical hard query: x_i y_ij z_j.
        // Pr[x1 y11 z1 ∨ x1 y12 z2 ∨ x2 y21 z1] with all probabilities 0.5:
        // brute-force over the 7 variables gives 0.2265625.
        let d = Dnf::new([
            Clause::new([v(1), v(11), v(21)]),
            Clause::new([v(1), v(12), v(22)]),
            Clause::new([v(2), v(13), v(21)]),
        ]);
        let p: BTreeMap<Variable, f64> = [1, 2, 11, 12, 13, 21, 22]
            .iter()
            .map(|i| (v(*i), 0.5))
            .collect();
        let brute = brute_force(&d, &p);
        assert!((exact_probability(&d, &p) - brute).abs() < 1e-12);
    }

    /// Brute-force probability by enumerating all assignments of the
    /// formula's variables.
    fn brute_force(d: &Dnf, probs: &BTreeMap<Variable, f64>) -> f64 {
        let vars: Vec<Variable> = d.variables().into_iter().collect();
        let mut total = 0.0;
        for mask in 0u64..(1 << vars.len()) {
            let mut assignment = BTreeMap::new();
            let mut weight = 1.0;
            for (bit, var) in vars.iter().enumerate() {
                let truth = mask & (1 << bit) != 0;
                assignment.insert(*var, truth);
                let p = probs.get(var).copied().unwrap_or(0.0);
                weight *= if truth { p } else { 1.0 - p };
            }
            if d.eval(&assignment) {
                total += weight;
            }
        }
        total
    }

    proptest! {
        /// Shannon expansion agrees with brute-force world enumeration on
        /// random small DNFs.
        #[test]
        fn shannon_matches_brute_force(
            clause_specs in proptest::collection::vec(
                proptest::collection::btree_set(0u64..6, 1..4),
                1..6
            ),
            probs_raw in proptest::collection::vec(0.05f64..0.95, 6)
        ) {
            let dnf = Dnf::new(clause_specs.iter().map(|s| Clause::new(s.iter().map(|i| v(*i)))));
            let probs: BTreeMap<Variable, f64> =
                probs_raw.iter().enumerate().map(|(i, p)| (v(i as u64), *p)).collect();
            let exact = exact_probability(&dnf, &probs);
            let brute = brute_force(&dnf, &probs);
            prop_assert!((exact - brute).abs() < 1e-9, "exact={exact} brute={brute}");
        }

        /// Probabilities are always within [0, 1].
        #[test]
        fn probability_is_in_unit_interval(
            clause_specs in proptest::collection::vec(
                proptest::collection::btree_set(0u64..8, 1..5),
                0..8
            ),
            probs_raw in proptest::collection::vec(0.0f64..=1.0, 8)
        ) {
            let dnf = Dnf::new(clause_specs.iter().map(|s| Clause::new(s.iter().map(|i| v(*i)))));
            let probs: BTreeMap<Variable, f64> =
                probs_raw.iter().enumerate().map(|(i, p)| (v(i as u64), *p)).collect();
            let p = exact_probability(&dnf, &probs);
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&p));
        }

        /// Monotonicity: adding a clause can only increase the probability.
        #[test]
        fn adding_clauses_is_monotone(
            clause_specs in proptest::collection::vec(
                proptest::collection::btree_set(0u64..6, 1..4),
                1..5
            ),
            extra in proptest::collection::btree_set(0u64..6, 1..4),
            probs_raw in proptest::collection::vec(0.05f64..0.95, 6)
        ) {
            let probs: BTreeMap<Variable, f64> =
                probs_raw.iter().enumerate().map(|(i, p)| (v(i as u64), *p)).collect();
            let base = Dnf::new(clause_specs.iter().map(|s| Clause::new(s.iter().map(|i| v(*i)))));
            let mut bigger = base.clone();
            bigger.add_clause(Clause::new(extra.iter().map(|i| v(*i))));
            prop_assert!(exact_probability(&bigger, &probs) >= exact_probability(&base, &probs) - 1e-12);
        }
    }
}
