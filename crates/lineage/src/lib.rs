//! # pdb-lineage
//!
//! Boolean lineage of query answers over tuple-independent probabilistic
//! databases, and *ground-truth* probability computation.
//!
//! For conjunctive queries the lineage of an answer tuple is a DNF formula
//! over the input tuples' Boolean random variables (paper, Section I and
//! II.C): each clause is the conjunction of the variables of the input tuples
//! that were joined to produce one derivation of the answer tuple.
//!
//! The crate provides:
//!
//! * [`Clause`] and [`Dnf`] — relational DNF lineage.
//! * [`exact_probability`] — exact `Pr[φ]` by Shannon expansion over the
//!   formula's variables, exponential in the worst case and intended as the
//!   oracle that the efficient operators of `pdb-conf` are tested against.
//! * [`independent_or`] / [`independent_and`] — the linear-time probability
//!   combinators for one-occurrence-form (1OF) formulas that the paper's
//!   operator is built from.
//! * [`factorize`] / [`ReadOnceTree`] — read-once factorization of monotone
//!   DNF: the exact linear-time fallback for lineage of *unsafe* queries,
//!   returning the blocking sub-formula when no read-once form exists.

pub mod dnf;
pub mod prob;
pub mod readonce;

pub use dnf::{Clause, Dnf};
pub use prob::{exact_probability, independent_and, independent_or};
pub use readonce::{factorize, Factorization, ReadOnceTree};
