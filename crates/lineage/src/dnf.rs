//! DNF lineage formulas over Boolean random variables.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use pdb_storage::Variable;

/// A conjunction of (positive) variables — one derivation of an answer tuple.
///
/// Lineage of conjunctive queries is monotone: clauses only contain positive
/// literals. Variables are stored as a set, so `x ∧ x` collapses to `x`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Clause {
    vars: BTreeSet<Variable>,
}

impl Clause {
    /// A clause over the given variables.
    pub fn new(vars: impl IntoIterator<Item = Variable>) -> Self {
        Clause {
            vars: vars.into_iter().collect(),
        }
    }

    /// The empty clause, which is identically true.
    pub fn empty() -> Self {
        Clause::default()
    }

    /// The variables of the clause.
    pub fn vars(&self) -> &BTreeSet<Variable> {
        &self.vars
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the clause is the (true) empty clause.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Whether the clause mentions `var`.
    pub fn contains(&self, var: Variable) -> bool {
        self.vars.contains(&var)
    }

    /// Evaluates the clause under a truth assignment (missing variables are
    /// false).
    pub fn eval(&self, assignment: &BTreeMap<Variable, bool>) -> bool {
        self.vars
            .iter()
            .all(|v| assignment.get(v).copied().unwrap_or(false))
    }

    /// The conjunction of two clauses.
    pub fn and(&self, other: &Clause) -> Clause {
        Clause {
            vars: self.vars.union(&other.vars).copied().collect(),
        }
    }

    /// The clause restricted by setting `var` to `value`: returns `None` if
    /// the clause becomes false (impossible for monotone clauses — setting a
    /// variable false removes clauses containing it), otherwise the clause
    /// with the variable removed.
    pub fn assign(&self, var: Variable, value: bool) -> Option<Clause> {
        if !self.vars.contains(&var) {
            return Some(self.clone());
        }
        if value {
            let mut vars = self.vars.clone();
            vars.remove(&var);
            Some(Clause { vars })
        } else {
            None
        }
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.vars.is_empty() {
            return write!(f, "⊤");
        }
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, "∧")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// A DNF formula: a disjunction of clauses. The empty DNF is false.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dnf {
    clauses: Vec<Clause>,
}

impl Dnf {
    /// The false formula (no clauses).
    pub fn empty() -> Self {
        Dnf::default()
    }

    /// A formula from the given clauses, deduplicated.
    pub fn new(clauses: impl IntoIterator<Item = Clause>) -> Self {
        let mut out = Dnf::empty();
        for c in clauses {
            out.add_clause(c);
        }
        out
    }

    /// A single-variable formula.
    pub fn var(v: Variable) -> Self {
        Dnf {
            clauses: vec![Clause::new([v])],
        }
    }

    /// Adds a clause unless it is already present.
    pub fn add_clause(&mut self, clause: Clause) {
        if !self.clauses.contains(&clause) {
            self.clauses.push(clause);
        }
    }

    /// The clauses of the formula.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the formula is false (no clauses).
    pub fn is_false(&self) -> bool {
        self.clauses.is_empty()
    }

    /// All variables mentioned.
    pub fn variables(&self) -> BTreeSet<Variable> {
        self.clauses
            .iter()
            .flat_map(|c| c.vars().iter().copied())
            .collect()
    }

    /// Evaluates the formula under a truth assignment.
    pub fn eval(&self, assignment: &BTreeMap<Variable, bool>) -> bool {
        self.clauses.iter().any(|c| c.eval(assignment))
    }

    /// Disjunction of two formulas.
    pub fn or(&self, other: &Dnf) -> Dnf {
        let mut out = self.clone();
        for c in &other.clauses {
            out.add_clause(c.clone());
        }
        out
    }

    /// Conjunction of two formulas (clause-wise distribution).
    pub fn and(&self, other: &Dnf) -> Dnf {
        let mut out = Dnf::empty();
        for a in &self.clauses {
            for b in &other.clauses {
                out.add_clause(a.and(b));
            }
        }
        out
    }

    /// The formula restricted by setting `var` to `value` (Shannon cofactor).
    pub fn assign(&self, var: Variable, value: bool) -> Dnf {
        let mut out = Dnf::empty();
        for c in &self.clauses {
            if let Some(restricted) = c.assign(var, value) {
                out.add_clause(restricted);
            }
        }
        out
    }

    /// Whether the formula is identically true (contains the empty clause).
    pub fn is_true(&self) -> bool {
        self.clauses.iter().any(|c| c.is_empty())
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊥");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u64) -> Variable {
        Variable(i)
    }

    #[test]
    fn clause_dedups_variables() {
        let c = Clause::new([v(1), v(1), v(2)]);
        assert_eq!(c.len(), 2);
        assert!(c.contains(v(1)));
        assert!(!c.contains(v(3)));
    }

    #[test]
    fn clause_eval() {
        let c = Clause::new([v(1), v(2)]);
        let mut a = BTreeMap::new();
        a.insert(v(1), true);
        assert!(!c.eval(&a));
        a.insert(v(2), true);
        assert!(c.eval(&a));
        assert!(Clause::empty().eval(&a));
    }

    #[test]
    fn clause_assignment_cofactors() {
        let c = Clause::new([v(1), v(2)]);
        assert_eq!(c.assign(v(1), true).unwrap(), Clause::new([v(2)]));
        assert!(c.assign(v(1), false).is_none());
        assert_eq!(c.assign(v(9), false).unwrap(), c);
    }

    #[test]
    fn dnf_construction_and_dedup() {
        // The intro example lineage x1y1z1 ∨ x1y1z2.
        let d = Dnf::new([
            Clause::new([v(1), v(10), v(100)]),
            Clause::new([v(1), v(10), v(101)]),
            Clause::new([v(1), v(10), v(100)]),
        ]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.variables().len(), 4);
        assert!(!d.is_false());
        assert!(!d.is_true());
    }

    #[test]
    fn dnf_eval_matches_clause_semantics() {
        let d = Dnf::new([Clause::new([v(1), v(2)]), Clause::new([v(3)])]);
        let mut a = BTreeMap::new();
        a.insert(v(3), true);
        assert!(d.eval(&a));
        a.insert(v(3), false);
        assert!(!d.eval(&a));
    }

    #[test]
    fn or_and_combinators() {
        let x = Dnf::var(v(1));
        let y = Dnf::var(v(2));
        let both = x.and(&y);
        assert_eq!(both.clauses(), &[Clause::new([v(1), v(2)])]);
        let either = x.or(&y);
        assert_eq!(either.len(), 2);
        // AND with false is false; OR with false is identity.
        assert!(x.and(&Dnf::empty()).is_false());
        assert_eq!(x.or(&Dnf::empty()), x);
    }

    #[test]
    fn shannon_cofactor() {
        let d = Dnf::new([Clause::new([v(1), v(2)]), Clause::new([v(3)])]);
        let d_true = d.assign(v(1), true);
        assert_eq!(
            d_true.clauses(),
            &[Clause::new([v(2)]), Clause::new([v(3)])]
        );
        let d_false = d.assign(v(1), false);
        assert_eq!(d_false.clauses(), &[Clause::new([v(3)])]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Dnf::empty().to_string(), "⊥");
        assert_eq!(Clause::empty().to_string(), "⊤");
        let d = Dnf::new([Clause::new([v(1), v(2)])]);
        assert_eq!(d.to_string(), "x1∧x2");
    }
}
