//! DNF lineage formulas over Boolean random variables.
//!
//! Storage is allocation-lean: a [`Clause`] keeps its variables in a sorted,
//! deduplicated `Vec` (one contiguous allocation instead of a `BTreeSet`
//! node per variable), and a [`Dnf`] maintains a sorted index over its
//! clauses so duplicate detection in [`Dnf::add_clause`] is a binary search
//! instead of a linear scan. This matters for the brute-force oracle, which
//! builds one clause per derivation row and cofactors formulas recursively
//! during Shannon expansion.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use pdb_storage::Variable;

/// A conjunction of (positive) variables — one derivation of an answer tuple.
///
/// Lineage of conjunctive queries is monotone: clauses only contain positive
/// literals. Variables are kept sorted and deduplicated, so `x ∧ x`
/// collapses to `x`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Clause {
    vars: Vec<Variable>,
}

impl Clause {
    /// A clause over the given variables.
    pub fn new(vars: impl IntoIterator<Item = Variable>) -> Self {
        let mut vars: Vec<Variable> = vars.into_iter().collect();
        vars.sort_unstable();
        vars.dedup();
        Clause { vars }
    }

    /// The empty clause, which is identically true.
    pub fn empty() -> Self {
        Clause::default()
    }

    /// The variables of the clause, sorted ascending.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the clause is the (true) empty clause.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Whether the clause mentions `var`.
    pub fn contains(&self, var: Variable) -> bool {
        self.vars.binary_search(&var).is_ok()
    }

    /// Evaluates the clause under a truth assignment (missing variables are
    /// false).
    pub fn eval(&self, assignment: &BTreeMap<Variable, bool>) -> bool {
        self.vars
            .iter()
            .all(|v| assignment.get(v).copied().unwrap_or(false))
    }

    /// The conjunction of two clauses (merge of two sorted runs).
    pub fn and(&self, other: &Clause) -> Clause {
        let mut vars = Vec::with_capacity(self.vars.len() + other.vars.len());
        let (mut i, mut j) = (0, 0);
        while i < self.vars.len() && j < other.vars.len() {
            use std::cmp::Ordering::*;
            match self.vars[i].cmp(&other.vars[j]) {
                Less => {
                    vars.push(self.vars[i]);
                    i += 1;
                }
                Greater => {
                    vars.push(other.vars[j]);
                    j += 1;
                }
                Equal => {
                    vars.push(self.vars[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        vars.extend_from_slice(&self.vars[i..]);
        vars.extend_from_slice(&other.vars[j..]);
        Clause { vars }
    }

    /// The clause restricted by setting `var` to `value`: returns `None` if
    /// the clause becomes false (impossible for monotone clauses — setting a
    /// variable false removes clauses containing it), otherwise the clause
    /// with the variable removed. Clauses not mentioning `var` are returned
    /// unchanged (one flat copy, no per-element rebuilding).
    pub fn assign(&self, var: Variable, value: bool) -> Option<Clause> {
        let Ok(pos) = self.vars.binary_search(&var) else {
            return Some(self.clone());
        };
        if value {
            let mut vars = Vec::with_capacity(self.vars.len() - 1);
            vars.extend_from_slice(&self.vars[..pos]);
            vars.extend_from_slice(&self.vars[pos + 1..]);
            Some(Clause { vars })
        } else {
            None
        }
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.vars.is_empty() {
            return write!(f, "⊤");
        }
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, "∧")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// A DNF formula: a disjunction of clauses. The empty DNF is false.
///
/// Clauses are kept in insertion order (observable through [`Dnf::clauses`]);
/// a sorted side index makes duplicate detection logarithmic.
#[derive(Debug, Clone, Default)]
pub struct Dnf {
    clauses: Vec<Clause>,
    /// Indices into `clauses`, ordered by clause; `add_clause` binary
    /// searches here instead of scanning.
    sorted: Vec<u32>,
}

impl PartialEq for Dnf {
    fn eq(&self, other: &Self) -> bool {
        self.clauses == other.clauses
    }
}

impl Eq for Dnf {}

impl Dnf {
    /// The false formula (no clauses).
    pub fn empty() -> Self {
        Dnf::default()
    }

    /// A formula from the given clauses, deduplicated.
    pub fn new(clauses: impl IntoIterator<Item = Clause>) -> Self {
        let mut out = Dnf::empty();
        for c in clauses {
            out.add_clause(c);
        }
        out
    }

    /// A single-variable formula.
    pub fn var(v: Variable) -> Self {
        Dnf {
            clauses: vec![Clause::new([v])],
            sorted: vec![0],
        }
    }

    /// Adds a clause unless it is already present.
    pub fn add_clause(&mut self, clause: Clause) {
        let pos = self
            .sorted
            .binary_search_by(|&i| self.clauses[i as usize].cmp(&clause));
        if let Err(insert_at) = pos {
            self.sorted.insert(insert_at, self.clauses.len() as u32);
            self.clauses.push(clause);
        }
    }

    /// The clauses of the formula, in insertion order.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the formula has no clauses (alias of [`Dnf::is_false`]).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Whether the formula is false (no clauses).
    pub fn is_false(&self) -> bool {
        self.clauses.is_empty()
    }

    /// All variables mentioned.
    pub fn variables(&self) -> BTreeSet<Variable> {
        self.clauses
            .iter()
            .flat_map(|c| c.vars().iter().copied())
            .collect()
    }

    /// Evaluates the formula under a truth assignment.
    pub fn eval(&self, assignment: &BTreeMap<Variable, bool>) -> bool {
        self.clauses.iter().any(|c| c.eval(assignment))
    }

    /// Disjunction of two formulas. Reserves the result up front and
    /// deduplicates through the sorted index — no repeated linear scans.
    pub fn or(&self, other: &Dnf) -> Dnf {
        let mut out = self.clone();
        out.clauses.reserve(other.clauses.len());
        for c in &other.clauses {
            out.add_clause(c.clone());
        }
        out
    }

    /// Conjunction of two formulas (clause-wise distribution).
    pub fn and(&self, other: &Dnf) -> Dnf {
        let mut out = Dnf::empty();
        out.clauses
            .reserve(self.clauses.len() * other.clauses.len());
        for a in &self.clauses {
            for b in &other.clauses {
                out.add_clause(a.and(b));
            }
        }
        out
    }

    /// The formula restricted by setting `var` to `value` (Shannon cofactor).
    pub fn assign(&self, var: Variable, value: bool) -> Dnf {
        let mut out = Dnf::empty();
        out.clauses.reserve(self.clauses.len());
        for c in &self.clauses {
            if let Some(restricted) = c.assign(var, value) {
                out.add_clause(restricted);
            }
        }
        out
    }

    /// Whether the formula is identically true (contains the empty clause).
    pub fn is_true(&self) -> bool {
        // The empty clause sorts first.
        self.sorted
            .first()
            .is_some_and(|&i| self.clauses[i as usize].is_empty())
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊥");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u64) -> Variable {
        Variable(i)
    }

    #[test]
    fn clause_dedups_variables() {
        let c = Clause::new([v(1), v(1), v(2)]);
        assert_eq!(c.len(), 2);
        assert!(c.contains(v(1)));
        assert!(!c.contains(v(3)));
    }

    #[test]
    fn clause_vars_are_sorted_regardless_of_insertion_order() {
        let c = Clause::new([v(5), v(1), v(3)]);
        assert_eq!(c.vars(), &[v(1), v(3), v(5)]);
        assert_eq!(c, Clause::new([v(3), v(5), v(1)]));
    }

    #[test]
    fn clause_eval() {
        let c = Clause::new([v(1), v(2)]);
        let mut a = BTreeMap::new();
        a.insert(v(1), true);
        assert!(!c.eval(&a));
        a.insert(v(2), true);
        assert!(c.eval(&a));
        assert!(Clause::empty().eval(&a));
    }

    #[test]
    fn clause_assignment_cofactors() {
        let c = Clause::new([v(1), v(2)]);
        assert_eq!(c.assign(v(1), true).unwrap(), Clause::new([v(2)]));
        assert!(c.assign(v(1), false).is_none());
        assert_eq!(c.assign(v(9), false).unwrap(), c);
    }

    #[test]
    fn clause_and_merges_sorted_runs() {
        let a = Clause::new([v(1), v(3)]);
        let b = Clause::new([v(2), v(3), v(4)]);
        assert_eq!(a.and(&b), Clause::new([v(1), v(2), v(3), v(4)]));
        assert_eq!(Clause::empty().and(&a), a);
    }

    #[test]
    fn dnf_construction_and_dedup() {
        // The intro example lineage x1y1z1 ∨ x1y1z2.
        let d = Dnf::new([
            Clause::new([v(1), v(10), v(100)]),
            Clause::new([v(1), v(10), v(101)]),
            Clause::new([v(1), v(10), v(100)]),
        ]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.variables().len(), 4);
        assert!(!d.is_false());
        assert!(!d.is_true());
    }

    #[test]
    fn dnf_eval_matches_clause_semantics() {
        let d = Dnf::new([Clause::new([v(1), v(2)]), Clause::new([v(3)])]);
        let mut a = BTreeMap::new();
        a.insert(v(3), true);
        assert!(d.eval(&a));
        a.insert(v(3), false);
        assert!(!d.eval(&a));
    }

    #[test]
    fn or_and_combinators() {
        let x = Dnf::var(v(1));
        let y = Dnf::var(v(2));
        let both = x.and(&y);
        assert_eq!(both.clauses(), &[Clause::new([v(1), v(2)])]);
        let either = x.or(&y);
        assert_eq!(either.len(), 2);
        // AND with false is false; OR with false is identity.
        assert!(x.and(&Dnf::empty()).is_false());
        assert_eq!(x.or(&Dnf::empty()), x);
    }

    #[test]
    fn or_deduplicates_across_operands() {
        let a = Dnf::new([Clause::new([v(1)]), Clause::new([v(2)])]);
        let b = Dnf::new([Clause::new([v(2)]), Clause::new([v(3)])]);
        let union = a.or(&b);
        assert_eq!(union.len(), 3);
    }

    #[test]
    fn shannon_cofactor() {
        let d = Dnf::new([Clause::new([v(1), v(2)]), Clause::new([v(3)])]);
        let d_true = d.assign(v(1), true);
        assert_eq!(
            d_true.clauses(),
            &[Clause::new([v(2)]), Clause::new([v(3)])]
        );
        let d_false = d.assign(v(1), false);
        assert_eq!(d_false.clauses(), &[Clause::new([v(3)])]);
    }

    #[test]
    fn tautology_detection_via_sorted_index() {
        let mut d = Dnf::new([Clause::new([v(1)])]);
        assert!(!d.is_true());
        d.add_clause(Clause::empty());
        assert!(d.is_true());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Dnf::empty().to_string(), "⊥");
        assert_eq!(Clause::empty().to_string(), "⊤");
        let d = Dnf::new([Clause::new([v(1), v(2)])]);
        assert_eq!(d.to_string(), "x1∧x2");
    }
}
