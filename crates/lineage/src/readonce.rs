//! Read-once factorization of monotone DNF lineage.
//!
//! A monotone Boolean formula is *read-once* (1OF) if it is equivalent to a
//! formula in which every variable appears exactly once. For such formulas
//! the probability is computed exactly in one bottom-up pass: independent
//! products at ∧-nodes and the inclusion–exclusion-free
//! `1 − Π(1 − pᵢ)` combinator at ∨-nodes — the same combinators the
//! paper's operator is built from. Lineage of many #P-hard (unsafe) queries
//! still factors read-once on concrete data, which is what makes the
//! fallback path of the unsafe-query subsystem worthwhile (Roy et al.,
//! arXiv:1012.0335).
//!
//! [`factorize`] implements the unate recursive decomposition:
//!
//! 1. the DNF is absorption-minimized (positive IDNF),
//! 2. ∨-decomposition splits the clause set into connected components of
//!    the "shares a variable" relation,
//! 3. ∧-decomposition splits a connected clause set along the connected
//!    components of the *complement* of the variable co-occurrence graph and
//!    verifies *normality*: the clause set must be exactly the cross product
//!    of its projections onto the components.
//!
//! When both decompositions are stuck the sub-formula in hand is provably
//! not read-once and is returned as the blocking witness
//! ([`Factorization::Blocked`]) — the dissociation bounds evaluator takes
//! over from there.

use std::collections::BTreeMap;

use pdb_storage::Variable;

use crate::dnf::{Clause, Dnf};

/// A read-once factorization tree: every variable occurs in exactly one leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOnceTree {
    /// A single variable.
    Leaf(Variable),
    /// Conjunction of independent subtrees (disjoint variable sets).
    And(Vec<ReadOnceTree>),
    /// Disjunction of independent subtrees (disjoint variable sets).
    Or(Vec<ReadOnceTree>),
}

impl ReadOnceTree {
    /// Exact probability of the subtree under independent variables with the
    /// given marginals: one bottom-up pass, products at ∧, `1 − Π(1 − pᵢ)`
    /// at ∨. Variables missing from `probs` are treated as impossible
    /// (probability 0).
    pub fn probability(&self, probs: &BTreeMap<Variable, f64>) -> f64 {
        match self {
            ReadOnceTree::Leaf(v) => probs.get(v).copied().unwrap_or(0.0),
            ReadOnceTree::And(children) => children.iter().map(|c| c.probability(probs)).product(),
            ReadOnceTree::Or(children) => {
                let none: f64 = children
                    .iter()
                    .map(|c| 1.0 - c.probability(probs))
                    .product();
                1.0 - none
            }
        }
    }

    /// Number of leaves — equal to the number of distinct variables, since
    /// every variable occurs exactly once.
    pub fn leaf_count(&self) -> usize {
        match self {
            ReadOnceTree::Leaf(_) => 1,
            ReadOnceTree::And(children) | ReadOnceTree::Or(children) => {
                children.iter().map(|c| c.leaf_count()).sum()
            }
        }
    }

    /// The variables of the tree, in leaf order.
    pub fn variables(&self) -> Vec<Variable> {
        let mut out = Vec::with_capacity(self.leaf_count());
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut Vec<Variable>) {
        match self {
            ReadOnceTree::Leaf(v) => out.push(*v),
            ReadOnceTree::And(children) | ReadOnceTree::Or(children) => {
                for c in children {
                    c.collect_variables(out);
                }
            }
        }
    }
}

/// Outcome of [`factorize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Factorization {
    /// The formula is constant (empty DNF is false; a DNF containing the
    /// empty clause is true).
    Constant(bool),
    /// The formula factors read-once.
    ReadOnce(ReadOnceTree),
    /// The formula is not read-once; the witness is the first sub-formula on
    /// which both decompositions got stuck.
    Blocked(Dnf),
}

impl Factorization {
    /// The read-once tree, if the formula factored.
    pub fn tree(&self) -> Option<&ReadOnceTree> {
        match self {
            Factorization::ReadOnce(t) => Some(t),
            _ => None,
        }
    }

    /// Whether the formula factored read-once (constants count as trivially
    /// read-once).
    pub fn is_read_once(&self) -> bool {
        !matches!(self, Factorization::Blocked(_))
    }
}

/// Factorizes a monotone DNF into a read-once tree, or returns the blocking
/// sub-formula when no read-once form exists.
pub fn factorize(dnf: &Dnf) -> Factorization {
    if dnf.is_false() {
        return Factorization::Constant(false);
    }
    if dnf.is_true() {
        return Factorization::Constant(true);
    }
    let clauses = minimize(dnf.clauses().iter().map(|c| c.vars().to_vec()).collect());
    if clauses.iter().any(|c| c.is_empty()) {
        // An empty clause survived minimization: the formula is true.
        return Factorization::Constant(true);
    }
    match build(&clauses) {
        Ok(tree) => Factorization::ReadOnce(tree),
        Err(blocking) => {
            let mut witness = Dnf::empty();
            for c in blocking {
                witness.add_clause(Clause::new(c));
            }
            Factorization::Blocked(witness)
        }
    }
}

/// Absorption-minimizes a positive clause set: drops duplicates and every
/// clause that is a superset of another clause. The result is the unique
/// positive IDNF of the input.
fn minimize(mut clauses: Vec<Vec<Variable>>) -> Vec<Vec<Variable>> {
    // Clause variables are already sorted (Clause keeps them sorted); sort
    // the clause list by (length, content) so absorbers precede absorbees
    // and the output order is canonical.
    clauses.sort_unstable_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    clauses.dedup();
    let mut kept: Vec<Vec<Variable>> = Vec::with_capacity(clauses.len());
    'outer: for c in clauses {
        for k in &kept {
            if is_subset(k, &c) {
                continue 'outer;
            }
        }
        kept.push(c);
    }
    kept
}

/// Whether sorted slice `a` is a subset of sorted slice `b`.
fn is_subset(a: &[Variable], b: &[Variable]) -> bool {
    let mut bi = b.iter();
    'next: for x in a {
        for y in bi.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'next,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Recursive unate decomposition over a minimized clause set. `Err` carries
/// the blocking clause set.
#[allow(clippy::type_complexity)]
fn build(clauses: &[Vec<Variable>]) -> Result<ReadOnceTree, Vec<Vec<Variable>>> {
    debug_assert!(!clauses.is_empty());
    if clauses.len() == 1 {
        return Ok(conjunction_of(&clauses[0]));
    }

    // ∨-decomposition: connected components of clauses sharing a variable.
    let components = clause_components(clauses);
    if components.len() > 1 {
        let mut children = Vec::with_capacity(components.len());
        for component in components {
            children.push(build(&component)?);
        }
        return Ok(ReadOnceTree::Or(children));
    }

    // ∧-decomposition: co-components of the variable co-occurrence graph.
    let vars = distinct_vars(clauses);
    let groups = co_components(clauses, &vars);
    if groups.len() <= 1 {
        // Neither decomposition applies: provably not read-once.
        return Err(clauses.to_vec());
    }

    // Project the clause set onto every group and verify normality: the
    // clause set must be exactly the cross product of its projections.
    let mut children = Vec::with_capacity(groups.len());
    let mut product: usize = 1;
    let mut projections = Vec::with_capacity(groups.len());
    for group in &groups {
        let mut proj: Vec<Vec<Variable>> = Vec::with_capacity(clauses.len());
        for clause in clauses {
            let p: Vec<Variable> = clause
                .iter()
                .filter(|v| group.contains(v))
                .copied()
                .collect();
            if p.is_empty() {
                // A clause misses a whole component: not a cross product.
                return Err(clauses.to_vec());
            }
            proj.push(p);
        }
        proj.sort_unstable();
        proj.dedup();
        product = product.saturating_mul(proj.len());
        projections.push(proj);
    }
    // Every (minimized, distinct) clause is the union of its projections, so
    // it maps to a distinct combination; |clauses| == Π|projᵢ| therefore
    // holds exactly when the map is onto the cross product.
    if product != clauses.len() {
        return Err(clauses.to_vec());
    }
    for proj in projections {
        // Projections of a minimal normal clause set are minimal themselves,
        // but re-minimize defensively: it is cheap and keeps the recursion's
        // precondition airtight.
        children.push(build(&minimize(proj))?);
    }
    Ok(ReadOnceTree::And(children))
}

/// A clause as a read-once (sub)tree: a single leaf or a conjunction of
/// leaves.
fn conjunction_of(clause: &[Variable]) -> ReadOnceTree {
    if clause.len() == 1 {
        ReadOnceTree::Leaf(clause[0])
    } else {
        ReadOnceTree::And(clause.iter().map(|v| ReadOnceTree::Leaf(*v)).collect())
    }
}

/// Sorted distinct variables of a clause set.
fn distinct_vars(clauses: &[Vec<Variable>]) -> Vec<Variable> {
    let mut vars: Vec<Variable> = clauses.iter().flatten().copied().collect();
    vars.sort_unstable();
    vars.dedup();
    vars
}

/// Connected components of the clause set under "shares a variable",
/// ordered by their smallest clause index (so the tree shape is canonical).
fn clause_components(clauses: &[Vec<Variable>]) -> Vec<Vec<Vec<Variable>>> {
    let n = clauses.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = i;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    let mut by_var: BTreeMap<Variable, usize> = BTreeMap::new();
    for (i, clause) in clauses.iter().enumerate() {
        for v in clause {
            match by_var.get(v) {
                Some(&j) => {
                    let a = find(&mut parent, i);
                    let b = find(&mut parent, j);
                    if a != b {
                        parent[a] = b;
                    }
                }
                None => {
                    by_var.insert(*v, i);
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<Vec<Variable>>> = BTreeMap::new();
    let mut first: BTreeMap<usize, usize> = BTreeMap::new();
    for (i, clause) in clauses.iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(clause.clone());
        first.entry(root).or_insert(i);
    }
    let mut ordered: Vec<(usize, Vec<Vec<Variable>>)> = groups
        .into_iter()
        .map(|(root, members)| (first[&root], members))
        .collect();
    ordered.sort_unstable_by_key(|(i, _)| *i);
    ordered.into_iter().map(|(_, members)| members).collect()
}

/// Connected components of the *complement* of the variable co-occurrence
/// graph, each returned as a sorted variable list, ordered by smallest
/// variable. One single component means no ∧-decomposition exists.
fn co_components(clauses: &[Vec<Variable>], vars: &[Variable]) -> Vec<Vec<Variable>> {
    let n = vars.len();
    let index: BTreeMap<Variable, usize> = vars.iter().enumerate().map(|(i, v)| (*v, i)).collect();
    // Co-occurrence adjacency as bitset rows (bag-scale formulas: n is small).
    let words = n.div_ceil(64);
    let mut adj = vec![0u64; n * words];
    for clause in clauses {
        for (k, a) in clause.iter().enumerate() {
            let ia = index[a];
            for b in &clause[k + 1..] {
                let ib = index[b];
                adj[ia * words + ib / 64] |= 1 << (ib % 64);
                adj[ib * words + ia / 64] |= 1 << (ia % 64);
            }
        }
    }
    // BFS over complement edges: neighbors of v are the unvisited vertices
    // *not* adjacent to v in the co-occurrence graph.
    let mut visited = vec![false; n];
    let mut components = Vec::new();
    for start in 0..n {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        let mut queue = vec![start];
        let mut members = vec![start];
        while let Some(v) = queue.pop() {
            let row = &adj[v * words..(v + 1) * words];
            for u in 0..n {
                if !visited[u] && row[u / 64] & (1 << (u % 64)) == 0 {
                    visited[u] = true;
                    queue.push(u);
                    members.push(u);
                }
            }
        }
        members.sort_unstable();
        components.push(members.into_iter().map(|i| vars[i]).collect());
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::exact_probability;

    fn v(i: u64) -> Variable {
        Variable(i)
    }

    fn dnf(clauses: &[&[u64]]) -> Dnf {
        let mut d = Dnf::empty();
        for c in clauses {
            d.add_clause(Clause::new(c.iter().map(|i| v(*i))));
        }
        d
    }

    fn probs(d: &Dnf) -> BTreeMap<Variable, f64> {
        d.variables()
            .into_iter()
            .map(|var| {
                // Distinct, reproducible marginals in (0, 1).
                let p = 0.05 + 0.9 * ((var.0 * 37 % 19) as f64 / 19.0);
                (var, p)
            })
            .collect()
    }

    fn assert_exact(d: &Dnf) {
        let f = factorize(d);
        let tree = f.tree().expect("expected read-once");
        let ps = probs(d);
        let got = tree.probability(&ps);
        let want = exact_probability(d, &ps);
        assert!(
            (got - want).abs() < 1e-12,
            "tree {got} vs oracle {want} on {d}"
        );
        // Read-once: every variable occurs exactly once.
        let mut vars = tree.variables();
        vars.sort_unstable();
        let mut distinct = vars.clone();
        distinct.dedup();
        assert_eq!(vars, distinct, "variable repeated in tree for {d}");
        assert_eq!(vars.len(), d.variables().len());
    }

    #[test]
    fn constants_factor_trivially() {
        assert_eq!(factorize(&Dnf::empty()), Factorization::Constant(false));
        let mut t = Dnf::empty();
        t.add_clause(Clause::empty());
        assert_eq!(factorize(&t), Factorization::Constant(true));
    }

    #[test]
    fn single_variable_and_single_clause() {
        assert_eq!(
            factorize(&dnf(&[&[3]])),
            Factorization::ReadOnce(ReadOnceTree::Leaf(v(3)))
        );
        assert_exact(&dnf(&[&[1, 2, 3]]));
    }

    #[test]
    fn disjoint_clauses_or_decompose() {
        // xy ∨ zu: independent clauses.
        assert_exact(&dnf(&[&[1, 2], &[3, 4]]));
    }

    #[test]
    fn shared_variable_and_decomposes() {
        // xb ∨ yb = (x ∨ y) ∧ b.
        let d = dnf(&[&[1, 3], &[2, 3]]);
        assert_exact(&d);
        match factorize(&d).tree().unwrap() {
            ReadOnceTree::And(children) => assert_eq!(children.len(), 2),
            other => panic!("expected ∧-root, got {other:?}"),
        }
    }

    #[test]
    fn cross_product_factorizes() {
        // (x ∨ y)(a ∨ b) expanded: xa ∨ xb ∨ ya ∨ yb.
        assert_exact(&dnf(&[&[1, 3], &[1, 4], &[2, 3], &[2, 4]]));
    }

    #[test]
    fn nested_factorization() {
        // x(a ∨ bc) ∨ d expanded: xa ∨ xbc ∨ d.
        assert_exact(&dnf(&[&[1, 2], &[1, 3, 4], &[5]]));
    }

    #[test]
    fn absorption_is_applied_before_decomposition() {
        // xy ∨ x ≡ x: the absorbed clause must not block factorization.
        let d = dnf(&[&[1, 2], &[1]]);
        assert_eq!(
            factorize(&d),
            Factorization::ReadOnce(ReadOnceTree::Leaf(v(1)))
        );
    }

    #[test]
    fn the_path_p4_is_blocked() {
        // xy ∨ yz ∨ zu: the canonical non-read-once monotone formula (its
        // co-occurrence graph is the path P4).
        let d = dnf(&[&[1, 2], &[2, 3], &[3, 4]]);
        match factorize(&d) {
            Factorization::Blocked(witness) => {
                assert_eq!(witness.len(), 3);
                assert_eq!(witness.variables().len(), 4);
            }
            other => panic!("expected blocked, got {other:?}"),
        }
    }

    #[test]
    fn blocked_witness_is_the_inner_subformula() {
        // (P4) ∨ w: the ∨-decomposition strips the independent clause and
        // the witness is the P4 core only.
        let d = dnf(&[&[1, 2], &[2, 3], &[3, 4], &[9]]);
        match factorize(&d) {
            Factorization::Blocked(witness) => {
                assert_eq!(witness.len(), 3);
                assert!(!witness.variables().contains(&v(9)));
            }
            other => panic!("expected blocked, got {other:?}"),
        }
    }

    #[test]
    fn non_normal_connected_formula_is_blocked() {
        // xa ∨ xb ∨ ya: connected, co-components {x,y} and {a,b}, but the
        // clause set is not the full cross product (ya present, yb absent).
        let d = dnf(&[&[1, 3], &[1, 4], &[2, 3]]);
        assert!(matches!(factorize(&d), Factorization::Blocked(_)));
    }

    #[test]
    fn leaf_count_and_variables() {
        let d = dnf(&[&[1, 3], &[2, 3]]);
        let tree = factorize(&d).tree().unwrap().clone();
        assert_eq!(tree.leaf_count(), 3);
        let mut vars = tree.variables();
        vars.sort_unstable();
        assert_eq!(vars, vec![v(1), v(2), v(3)]);
    }
}
