//! # pdb-par
//!
//! A small scoped-thread worker pool for deterministic data-parallel
//! fan-out. This is the sanctioned thread pool of the workspace: it has no
//! crates.io dependencies (the build environment is offline) and is built
//! entirely on [`std::thread::scope`], so borrowed inputs can be shared with
//! workers without `'static` bounds or reference counting.
//!
//! Design rules every helper here follows:
//!
//! * **Determinism.** Results are returned in task order no matter how many
//!   workers ran or how the OS scheduled them. Callers that partition work at
//!   independent boundaries (e.g. bags of duplicate answer tuples) therefore
//!   get bitwise-identical output at every thread count.
//! * **Sequential degradation.** With one thread, one task, or an empty task
//!   list the pool runs inline on the calling thread — no spawn, no
//!   synchronization, no allocation beyond the result vector. Code using the
//!   pool never needs a separate sequential path.
//! * **Self-balancing.** Workers pull task indices from a shared atomic
//!   counter, so skewed task sizes do not idle workers that finish early.
//!   ([`Pool::map_slices_mut`] is the one exception: disjoint `&mut`
//!   sub-slices cannot be re-claimed through a cursor, so each worker gets a
//!   contiguous slice group up front — callers pass roughly one slice per
//!   worker, typically cut by [`partition_by_weight`].)
//!
//! [`Pool::from_env`] reads the `SPROUT_THREADS` environment variable — the
//! engine-wide thread-count knob — and falls back to
//! [`std::thread::available_parallelism`].

use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Environment variable controlling the default worker count.
pub const THREADS_ENV: &str = "SPROUT_THREADS";

/// Why a `try_map*` fan-out failed.
///
/// Work-item closures run under [`std::panic::catch_unwind`], so a panicking
/// item is reported here instead of tearing down the process — the pool (a
/// per-call [`std::thread::scope`]) is always left reusable. When several
/// items fail before the cooperative abort stops the remaining workers, the
/// failure with the **lowest item index** among those observed is reported;
/// with a single failing item (the fault-injection case) the report is
/// therefore fully deterministic.
#[derive(Debug)]
pub enum TaskFailure<E> {
    /// The closure returned `Err` for work item `item`.
    Err {
        /// Index of the failing work item.
        item: usize,
        /// The error the closure returned.
        error: E,
    },
    /// The closure panicked on work item `item`.
    Panic {
        /// Index of the panicking work item.
        item: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl<E> TaskFailure<E> {
    /// Index of the work item the failure is attributed to.
    pub fn item(&self) -> usize {
        match self {
            TaskFailure::Err { item, .. } | TaskFailure::Panic { item, .. } => *item,
        }
    }
}

/// Renders a caught panic payload for [`TaskFailure::Panic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Below this many items a fan-out is not worth a thread spawn:
/// [`Pool::for_items`] degrades to the sequential pool. Callers holding an
/// explicit pool bypass the gate — tests and benchmarks use that to exercise
/// the parallel path on small inputs.
pub const SEQUENTIAL_CUTOFF: usize = 512;

/// A worker-pool configuration: how many OS threads a fan-out may use.
///
/// The pool is a *policy*, not a set of live threads: workers are spawned
/// per [`Pool::map`] call inside a [`std::thread::scope`] and joined before
/// it returns, so there is no global state, shutdown ordering, or channel
/// plumbing to manage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: NonZeroUsize,
}

impl Pool {
    /// A pool using exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: NonZeroUsize::new(threads.max(1)).expect("max(1) is non-zero"),
        }
    }

    /// The single-threaded pool: every `map` runs inline on the caller.
    pub fn sequential() -> Pool {
        Pool::new(1)
    }

    /// The default pool: `SPROUT_THREADS` if set to a positive integer,
    /// otherwise the machine's available parallelism.
    pub fn from_env() -> Pool {
        let configured = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        match configured {
            Some(n) => Pool::new(n),
            None => Pool::new(
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1),
            ),
        }
    }

    /// Number of worker threads a fan-out may use.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// This pool, degraded to [`Pool::sequential`] when the workload is too
    /// small ([`SEQUENTIAL_CUTOFF`] items) for thread spawns to pay off.
    /// Results are identical either way; this is purely a latency guard for
    /// the convenience entry points that pick the pool themselves.
    pub fn for_items(&self, items: usize) -> Pool {
        if items < SEQUENTIAL_CUTOFF {
            Pool::sequential()
        } else {
            *self
        }
    }

    /// Applies `f` to every task and returns the results **in task order**.
    ///
    /// Workers claim tasks through a shared atomic cursor (self-balancing)
    /// and collect `(index, result)` pairs locally; the pairs are placed back
    /// into task order after the scope joins, so the output is independent of
    /// scheduling. Runs inline when the pool is sequential or there are
    /// fewer than two tasks.
    pub fn map<T, R, F>(&self, tasks: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.threads().min(tasks.len());
        if workers <= 1 {
            return tasks.iter().map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(tasks.len());
        slots.resize_with(tasks.len(), || None);
        let worker = |out: &mut Vec<(usize, R)>| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(task) = tasks.get(i) else { break };
            out.push((i, f(task)));
        };
        let collected: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        worker(&mut local);
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pdb-par worker panicked"))
                .collect()
        });
        for (i, r) in collected.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every task index was claimed exactly once"))
            .collect()
    }

    /// [`Pool::map`] over index ranges: applies `f` to each range in
    /// `ranges`, returning results in range order. Convenience wrapper for
    /// the partition-then-fan-out pattern.
    pub fn map_ranges<R, F>(&self, ranges: &[Range<usize>], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        self.map(ranges, |r| f(r.clone()))
    }

    /// Fallible, panic-isolated [`Pool::map`]: applies `f(item_index, task)`
    /// to every task and returns the results in task order, or the first
    /// (lowest-indexed observed) [`TaskFailure`].
    ///
    /// Each work item runs under `catch_unwind`, so a panicking closure
    /// yields [`TaskFailure::Panic`] instead of unwinding through the pool;
    /// the remaining workers stop claiming items through a cooperative abort
    /// flag. On `Err` the partial results are dropped — a failed fan-out
    /// never exposes partially-computed output. The governed operators are
    /// built on this: their checkpoint errors propagate out of the closure
    /// as `Err`, and injected panics surface as `Panic`.
    pub fn try_map<T, R, E, F>(&self, tasks: &[T], f: F) -> Result<Vec<R>, TaskFailure<E>>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        let workers = self.threads().min(tasks.len());
        if workers <= 1 {
            let mut out = Vec::with_capacity(tasks.len());
            for (i, task) in tasks.iter().enumerate() {
                out.push(run_item(&f, i, task)?);
            }
            return Ok(out);
        }
        let cursor = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let worker = |ok: &mut Vec<(usize, R)>| -> Option<TaskFailure<E>> {
            loop {
                if abort.load(Ordering::Relaxed) {
                    return None;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let task = tasks.get(i)?;
                match run_item(&f, i, task) {
                    Ok(r) => ok.push((i, r)),
                    Err(failure) => {
                        abort.store(true, Ordering::Relaxed);
                        return Some(failure);
                    }
                }
            }
        };
        type TaskOutcome<R, E> = (Vec<(usize, R)>, Option<TaskFailure<E>>);
        let collected: Vec<TaskOutcome<R, E>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        let failure = worker(&mut local);
                        (local, failure)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pdb-par worker harness never panics"))
                .collect()
        });
        let mut slots: Vec<Option<R>> = Vec::with_capacity(tasks.len());
        slots.resize_with(tasks.len(), || None);
        let mut first_failure: Option<TaskFailure<E>> = None;
        for (oks, failure) in collected {
            if let Some(f) = failure {
                if first_failure.as_ref().is_none_or(|b| f.item() < b.item()) {
                    first_failure = Some(f);
                }
            }
            for (i, r) in oks {
                slots[i] = Some(r);
            }
        }
        if let Some(failure) = first_failure {
            return Err(failure);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every task index was claimed exactly once"))
            .collect())
    }

    /// [`Pool::try_map`] over index ranges (`f(range_index, range)`).
    pub fn try_map_ranges<R, E, F>(
        &self,
        ranges: &[Range<usize>],
        f: F,
    ) -> Result<Vec<R>, TaskFailure<E>>
    where
        R: Send,
        E: Send,
        F: Fn(usize, Range<usize>) -> Result<R, E> + Sync,
    {
        self.try_map(ranges, |i, r| f(i, r.clone()))
    }

    /// Splits `data` at the ascending cut offsets `bounds`
    /// (`bounds[0] == 0`; slice `i` spans `bounds[i]..bounds[i + 1]`, the
    /// last slice runs to `data.len()`) and applies `f(slice_index, slice)`
    /// to every sub-slice, each on exactly one worker. Results come back in
    /// slice order.
    ///
    /// This is the mutable counterpart of [`Pool::map_ranges`]: workers get
    /// disjoint `&mut` sub-slices of one pre-sized buffer, so chunked
    /// producers (e.g. parallel key encoding) write their output in place
    /// instead of returning per-chunk vectors that must be concatenated.
    ///
    /// # Panics on worker panic
    /// If a slice closure panics, this call panics on the calling thread
    /// (naming the slice) after all workers have stopped — it **never
    /// returns normally** with some segments written and others not, so a
    /// half-written buffer can only be observed by code that deliberately
    /// catches the panic. Callers that catch must treat `data` as poisoned
    /// and discard it; use [`Pool::try_map_slices_mut`] to get the same
    /// guarantee as an `Err` return instead of a panic.
    pub fn map_slices_mut<T, R, F>(&self, data: &mut [T], bounds: &[usize], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut [T]) -> R + Sync,
    {
        // One buffer is the two-buffer combinator with an empty aux side.
        let aux_bounds = vec![0usize; bounds.len()];
        let mut aux: [(); 0] = [];
        self.map_slices2_mut(data, bounds, &mut aux, &aux_bounds, |i, slice, _aux| {
            f(i, slice)
        })
    }

    /// Fallible, panic-isolated [`Pool::map_slices_mut`]: the closure
    /// returns `Result`, and a failing or panicking slice yields the
    /// lowest-indexed observed [`TaskFailure`] after the cooperative abort
    /// stops the remaining workers.
    ///
    /// On `Err`, segments that already ran **have been written**: the caller
    /// owns `data` and must discard it (the governed operators drop the
    /// placeholder arenas on error, so a partially-written relation is never
    /// observable downstream).
    pub fn try_map_slices_mut<T, R, E, F>(
        &self,
        data: &mut [T],
        bounds: &[usize],
        f: F,
    ) -> Result<Vec<R>, TaskFailure<E>>
    where
        T: Send,
        R: Send,
        E: Send,
        F: Fn(usize, &mut [T]) -> Result<R, E> + Sync,
    {
        let aux_bounds = vec![0usize; bounds.len()];
        let mut aux: [(); 0] = [];
        self.try_map_slices2_mut(data, bounds, &mut aux, &aux_bounds, |i, slice, _aux| {
            f(i, slice)
        })
    }

    /// [`Pool::map_slices_mut`] over **two** parallel buffers: splits `data`
    /// at `data_bounds` and `aux` at `aux_bounds` (same number of cuts, same
    /// conventions as [`Pool::map_slices_mut`]) and applies
    /// `f(slice_index, data_slice, aux_slice)` to every aligned sub-slice
    /// pair. Results come back in slice order.
    ///
    /// This is the combinator behind parallel writes into an arena-backed
    /// relation: the data arena and the lineage arena have different strides,
    /// so one cut offset per arena is needed, but slice `i` of both arenas
    /// belongs to the same row range and must be handed to the same worker.
    ///
    /// # Panics on worker panic
    /// Same poisoned-state contract as [`Pool::map_slices_mut`]: a panicking
    /// slice closure makes this call panic on the calling thread (after the
    /// cooperative abort stops the remaining workers) instead of returning
    /// normally, so partially-written buffers are never silently observable.
    pub fn map_slices2_mut<T, U, R, F>(
        &self,
        data: &mut [T],
        data_bounds: &[usize],
        aux: &mut [U],
        aux_bounds: &[usize],
        f: F,
    ) -> Vec<R>
    where
        T: Send,
        U: Send,
        R: Send,
        F: Fn(usize, &mut [T], &mut [U]) -> R + Sync,
    {
        match self.try_map_slices2_mut(data, data_bounds, aux, aux_bounds, |i, d, a| {
            Ok::<R, std::convert::Infallible>(f(i, d, a))
        }) {
            Ok(results) => results,
            Err(TaskFailure::Panic { item, message }) => {
                panic!("pdb-par worker panicked on slice {item}: {message}")
            }
            Err(TaskFailure::Err { error, .. }) => match error {},
        }
    }

    /// Fallible, panic-isolated [`Pool::map_slices2_mut`]; see
    /// [`Pool::try_map_slices_mut`] for the failure contract (on `Err` both
    /// buffers may be partially written and must be discarded).
    pub fn try_map_slices2_mut<T, U, R, E, F>(
        &self,
        data: &mut [T],
        data_bounds: &[usize],
        aux: &mut [U],
        aux_bounds: &[usize],
        f: F,
    ) -> Result<Vec<R>, TaskFailure<E>>
    where
        T: Send,
        U: Send,
        R: Send,
        E: Send,
        F: Fn(usize, &mut [T], &mut [U]) -> Result<R, E> + Sync,
    {
        let n = data_bounds.len();
        assert_eq!(
            n,
            aux_bounds.len(),
            "both bounds lists must cut the same number of slices"
        );
        if n == 0 {
            return Ok(Vec::new());
        }
        let data_slices = split_at_bounds(data, data_bounds);
        let aux_slices = split_at_bounds(aux, aux_bounds);
        let pairs: Vec<SlicePair<'_, T, U>> = data_slices
            .into_iter()
            .zip(aux_slices)
            .enumerate()
            .map(|(i, (d, a))| (i, d, a))
            .collect();
        let workers = self.threads().min(n);
        if workers <= 1 {
            let mut out = Vec::with_capacity(n);
            for (i, d, a) in pairs {
                out.push(run_slice_pair(&f, i, d, a)?);
            }
            return Ok(out);
        }
        // Hand each worker a contiguous group of slice pairs; collect
        // `(index, result)` pairs and place them back in slice order. A
        // failure flips the abort flag so other workers stop before their
        // next pair.
        let mut groups: Vec<Vec<SlicePair<'_, T, U>>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, d, a) in pairs {
            groups[i * workers / n].push((i, d, a));
        }
        let f = &f;
        let abort = AtomicBool::new(false);
        let abort_ref = &abort;
        type SliceOutcome<R, E> = (Vec<(usize, R)>, Option<TaskFailure<E>>);
        let collected: Vec<SliceOutcome<R, E>> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .map(|group| {
                    scope.spawn(move || {
                        let mut oks = Vec::with_capacity(group.len());
                        let mut failure = None;
                        for (i, d, a) in group {
                            if abort_ref.load(Ordering::Relaxed) {
                                break;
                            }
                            match run_slice_pair(f, i, d, a) {
                                Ok(r) => oks.push((i, r)),
                                Err(e) => {
                                    abort_ref.store(true, Ordering::Relaxed);
                                    failure = Some(e);
                                    break;
                                }
                            }
                        }
                        (oks, failure)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pdb-par worker harness never panics"))
                .collect()
        });
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let mut first_failure: Option<TaskFailure<E>> = None;
        for (oks, failure) in collected {
            if let Some(f) = failure {
                if first_failure.as_ref().is_none_or(|b| f.item() < b.item()) {
                    first_failure = Some(f);
                }
            }
            for (i, r) in oks {
                slots[i] = Some(r);
            }
        }
        if let Some(failure) = first_failure {
            return Err(failure);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every slice index was visited exactly once"))
            .collect())
    }
}

/// Runs one `try_map` work item under `catch_unwind`.
fn run_item<T, R, E, F>(f: &F, i: usize, task: &T) -> Result<R, TaskFailure<E>>
where
    F: Fn(usize, &T) -> Result<R, E>,
{
    match catch_unwind(AssertUnwindSafe(|| f(i, task))) {
        Ok(Ok(r)) => Ok(r),
        Ok(Err(error)) => Err(TaskFailure::Err { item: i, error }),
        Err(payload) => Err(TaskFailure::Panic {
            item: i,
            message: panic_message(payload),
        }),
    }
}

/// Runs one `try_map_slices2_mut` slice pair under `catch_unwind`.
fn run_slice_pair<T, U, R, E, F>(
    f: &F,
    i: usize,
    d: &mut [T],
    a: &mut [U],
) -> Result<R, TaskFailure<E>>
where
    F: Fn(usize, &mut [T], &mut [U]) -> Result<R, E>,
{
    match catch_unwind(AssertUnwindSafe(|| f(i, d, a))) {
        Ok(Ok(r)) => Ok(r),
        Ok(Err(error)) => Err(TaskFailure::Err { item: i, error }),
        Err(payload) => Err(TaskFailure::Panic {
            item: i,
            message: panic_message(payload),
        }),
    }
}

/// One indexed pair of aligned mutable sub-slices handed to a
/// [`Pool::map_slices2_mut`] worker.
type SlicePair<'a, T, U> = (usize, &'a mut [T], &'a mut [U]);

/// Splits `data` at the ascending cut offsets `bounds` (`bounds[0] == 0`,
/// last slice runs to `data.len()`) into disjoint mutable sub-slices.
fn split_at_bounds<'a, T>(data: &'a mut [T], bounds: &[usize]) -> Vec<&'a mut [T]> {
    debug_assert_eq!(bounds.first().copied(), Some(0), "bounds must start at 0");
    debug_assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(bounds.last().copied().unwrap_or(0) <= data.len());
    let mut slices = Vec::with_capacity(bounds.len());
    let mut rest = data;
    let mut prev = 0usize;
    for &cut in &bounds[1..] {
        let (head, tail) = rest.split_at_mut(cut - prev);
        slices.push(head);
        prev = cut;
        rest = tail;
    }
    slices.push(rest);
    slices
}

/// `parts` contiguous, even-sized ranges covering `0..n`, clamped to at most
/// one per item and at least one range (`n == 0` yields a single empty
/// range). The uniform-weight chunking every parallel encoder/scanner uses;
/// for skewed work, cut by [`partition_by_weight`] instead.
pub fn even_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    (0..parts)
        .map(|c| (n * c / parts)..(n * (c + 1) / parts))
        .collect()
}

/// Exclusive prefix sum of per-chunk output counts: returns the write
/// offsets each chunk's output starts at (`offsets[i] = counts[0] + … +
/// counts[i-1]`) plus the total. The stitch-in-chunk-order primitive of the
/// two-phase (count, then write-in-place) parallel operators.
pub fn exclusive_prefix_sum(counts: impl IntoIterator<Item = usize>) -> (Vec<usize>, usize) {
    let mut offsets = Vec::new();
    let mut total = 0usize;
    for c in counts {
        offsets.push(total);
        total += c;
    }
    (offsets, total)
}

/// The independent-or merge `1 − (1 − p)(1 − acc)`: the probability that at
/// least one of two *independent* events fires.
///
/// The operand order matches the accumulator update of SPROUT's Fig. 8
/// streaming machine (`allP ← 1 − (1 − crtP)(1 − allP)`) exactly, so a left
/// fold of per-partition probabilities through this function replays the
/// sequential machine's root accumulation **bitwise** — the property the
/// intra-bag split relies on to stay identical to the unsplit scan.
#[inline]
pub fn independent_or(p: f64, acc: f64) -> f64 {
    1.0 - (1.0 - p) * (1.0 - acc)
}

/// Folds independent-event probabilities with [`independent_or`] in a fixed
/// left-deep shape (iteration order, accumulator seeded with `0.0`).
///
/// The reduction shape depends only on the *data* (the partition list),
/// never on how many workers produced the partials, so the result is
/// bitwise-identical at every thread count — and bitwise-identical to a
/// sequential scan that folded the same values as it went.
#[inline]
pub fn independent_or_fold(probs: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = 0.0;
    for p in probs {
        acc = independent_or(p, acc);
    }
    acc
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

/// Partitions `0..bounds.len()` groups into at most `parts` contiguous
/// ranges of roughly equal *weight*, where group `g` spans the half-open
/// item interval `[bounds[g], bounds[g + 1])` and `total` is the overall
/// item count (`bounds` holds the group start offsets, sorted ascending,
/// with `bounds[0] == 0`).
///
/// This is the bag-partitioning primitive: groups (bags of duplicate answer
/// tuples, pre-aggregation groups) are independent units of work whose sizes
/// can be wildly skewed, so the split is balanced by item count, not by
/// group count. Returned ranges index into `bounds` (i.e. they are group
/// ranges), are **never zero-width**, and concatenate to `0..bounds.len()`.
///
/// The part count is clamped by the *item* count as well as the group count:
/// when items ≪ workers (a handful of rows spread over many requested
/// parts, possibly with zero-item groups in `bounds`) the split degrades to
/// at most one part per item instead of fanning empty work units out to
/// idle workers.
pub fn partition_by_weight(bounds: &[usize], total: usize, parts: usize) -> Vec<Range<usize>> {
    let groups = bounds.len();
    if groups == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, groups).min(total.max(1));
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 0..parts {
        if start >= groups {
            break;
        }
        // Ideal end of this part in item space; find the first group whose
        // start offset reaches it. The last part always takes the rest.
        let end = if p + 1 == parts {
            groups
        } else {
            let target = (total * (p + 1)) / parts;
            let mut end = start + 1;
            while end < groups && bounds[end] < target {
                end += 1;
            }
            end
        };
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Stable parallel sort of `0..len` by a key comparator: returns the same
/// permutation a sequential stable sort would, at every thread count.
///
/// The index space is split into contiguous chunks, each chunk is stably
/// sorted by a worker, and sorted chunks are merged pairwise (left chunk
/// wins ties, preserving ascending input order among equal keys — exactly
/// stable-sort semantics, since chunk `k`'s indices all precede chunk
/// `k+1`'s).
pub fn sorted_permutation_by<F>(len: usize, pool: &Pool, compare: F) -> Vec<u32>
where
    F: Fn(u32, u32) -> std::cmp::Ordering + Sync,
{
    let chunks = pool.threads().min(len.max(1));
    if chunks <= 1 || len < 2 {
        let mut order: Vec<u32> = (0..len as u32).collect();
        order.sort_by(|&a, &b| compare(a, b));
        return order;
    }
    let chunk_ranges = even_ranges(len, chunks);
    let mut runs: Vec<Vec<u32>> = pool.map_ranges(&chunk_ranges, |r| {
        let mut order: Vec<u32> = (r.start as u32..r.end as u32).collect();
        order.sort_by(|&a, &b| compare(a, b));
        order
    });
    // Pairwise merge rounds; each round's merges are themselves fanned out.
    while runs.len() > 1 {
        let pairs: Vec<(Vec<u32>, Vec<u32>)> = {
            let mut pairs = Vec::with_capacity(runs.len().div_ceil(2));
            let mut iter = runs.drain(..);
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(b) => pairs.push((a, b)),
                    None => pairs.push((a, Vec::new())),
                }
            }
            pairs
        };
        runs = pool.map(&pairs, |(a, b)| merge_runs(a, b, &compare));
    }
    runs.pop().unwrap_or_default()
}

fn merge_runs<F>(a: &[u32], b: &[u32], compare: &F) -> Vec<u32>
where
    F: Fn(u32, u32) -> std::cmp::Ordering,
{
    if b.is_empty() {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        // `a` comes from earlier input positions: it wins ties (stability).
        if compare(a[i], b[j]) != std::cmp::Ordering::Greater {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_task_order_at_every_thread_count() {
        let tasks: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = tasks.iter().map(|t| t * 2).collect();
        for threads in [1, 2, 3, 4, 8] {
            let pool = Pool::new(threads);
            assert_eq!(pool.map(&tasks, |t| t * 2), expected, "{threads} threads");
        }
    }

    #[test]
    fn map_handles_empty_and_single_task_lists() {
        let pool = Pool::new(8);
        assert!(pool.map(&Vec::<usize>::new(), |t| *t).is_empty());
        assert_eq!(pool.map(&[41], |t| t + 1), vec![42]);
    }

    #[test]
    fn map_ranges_runs_each_range() {
        let pool = Pool::new(4);
        let ranges = vec![0..3, 3..7, 7..7, 7..10];
        let sums = pool.map_ranges(&ranges, |r| r.sum::<usize>());
        assert_eq!(sums, vec![3, 18, 0, 24]);
    }

    #[test]
    fn pool_construction_clamps_and_reads_env() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::sequential().threads(), 1);
        assert!(Pool::from_env().threads() >= 1);
        assert!(Pool::default().threads() >= 1);
    }

    #[test]
    fn for_items_gates_small_workloads() {
        let pool = Pool::new(8);
        assert_eq!(pool.for_items(SEQUENTIAL_CUTOFF - 1).threads(), 1);
        assert_eq!(pool.for_items(SEQUENTIAL_CUTOFF).threads(), 8);
    }

    #[test]
    fn partition_by_weight_balances_skewed_groups() {
        // Group sizes 1, 1, 98, 1, 1 over 102 items: the heavy group must
        // not drag every light group into one part.
        let bounds = vec![0, 1, 2, 100, 101];
        let parts = partition_by_weight(&bounds, 102, 3);
        assert_eq!(parts.iter().map(|r| r.len()).sum::<usize>(), bounds.len());
        assert_eq!(parts[0].start, 0);
        for w in parts.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
        }
        assert!(parts.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn partition_by_weight_degenerate_inputs() {
        assert!(partition_by_weight(&[], 0, 4).is_empty());
        assert_eq!(partition_by_weight(&[0], 5, 4), vec![0..1]);
        // More parts than groups: one group per part.
        let parts = partition_by_weight(&[0, 2, 4], 6, 16);
        assert_eq!(parts, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn partition_by_weight_never_returns_zero_width_partitions() {
        // Regression: items ≪ workers. Three 1-item groups split across 16
        // requested parts must yield exactly three 1-group, 1-item parts —
        // no zero-width (or zero-item) ranges.
        let parts = partition_by_weight(&[0, 1, 2], 3, 16);
        assert_eq!(parts, vec![0..1, 1..2, 2..3]);
        for r in &parts {
            assert!(!r.is_empty(), "zero-width partition {r:?}");
        }
        // Zero-item groups present and fewer items than requested parts: the
        // part count is capped by the item count, so no part can cover only
        // empty groups.
        let bounds = vec![0, 0, 1, 1, 2];
        let parts = partition_by_weight(&bounds, 2, 16);
        assert_eq!(parts.iter().map(|r| r.len()).sum::<usize>(), bounds.len());
        assert!(parts.len() <= 2);
        for r in &parts {
            assert!(!r.is_empty(), "zero-width partition {r:?}");
            let items = bounds.get(r.end).copied().unwrap_or(2) - bounds[r.start];
            assert!(items >= 1, "partition {r:?} covers zero items");
        }
        // An empty total degrades to a single part spanning everything.
        assert_eq!(partition_by_weight(&[0, 0, 0], 0, 8), vec![0..3]);
        // Exhaustive sweep over small shapes: every returned range is
        // non-empty and the ranges tile the group index space.
        for groups in 1usize..6 {
            for per_group in 0usize..3 {
                let bounds: Vec<usize> = (0..groups).map(|g| g * per_group).collect();
                let total = groups * per_group;
                for workers in 1usize..10 {
                    let parts = partition_by_weight(&bounds, total, workers);
                    assert!(parts.iter().all(|r| !r.is_empty()));
                    assert_eq!(parts.first().map(|r| r.start), Some(0));
                    assert_eq!(parts.last().map(|r| r.end), Some(groups));
                    for w in parts.windows(2) {
                        assert_eq!(w[0].end, w[1].start);
                    }
                }
            }
        }
    }

    #[test]
    fn map_slices_mut_writes_disjoint_chunks_in_order() {
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let mut data = vec![0usize; 100];
            let bounds = vec![0, 10, 10, 55, 99];
            let sums = pool.map_slices_mut(&mut data, &bounds, |i, slice| {
                for v in slice.iter_mut() {
                    *v = i + 1;
                }
                slice.len()
            });
            assert_eq!(sums, vec![10, 0, 45, 44, 1], "{threads} threads");
            let expected: Vec<usize> = (0..100)
                .map(|k| match k {
                    0..=9 => 1,
                    10..=54 => 3,
                    55..=98 => 4,
                    _ => 5,
                })
                .collect();
            assert_eq!(data, expected, "{threads} threads");
        }
        let pool = Pool::new(4);
        let mut empty: Vec<u8> = Vec::new();
        assert!(pool
            .map_slices_mut(&mut empty, &[], |_, _: &mut [u8]| 0)
            .is_empty());
    }

    #[test]
    fn map_slices2_mut_writes_aligned_disjoint_chunks() {
        // Two arenas with different strides (3 and 2 items per "row"): the
        // same row-range cuts map to different element offsets per arena,
        // and every aligned pair must reach the same worker in slice order.
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let rows = 50usize;
            let mut data = vec![0usize; rows * 3];
            let mut aux = vec![0usize; rows * 2];
            let row_cuts = [0usize, 7, 7, 30, 49];
            let data_bounds: Vec<usize> = row_cuts.iter().map(|r| r * 3).collect();
            let aux_bounds: Vec<usize> = row_cuts.iter().map(|r| r * 2).collect();
            let lens =
                pool.map_slices2_mut(&mut data, &data_bounds, &mut aux, &aux_bounds, |i, d, a| {
                    assert_eq!(d.len() * 2, a.len() * 3, "aligned row ranges");
                    for v in d.iter_mut() {
                        *v = i + 1;
                    }
                    for v in a.iter_mut() {
                        *v = 10 * (i + 1);
                    }
                    (d.len(), a.len())
                });
            assert_eq!(
                lens,
                vec![(21, 14), (0, 0), (69, 46), (57, 38), (3, 2)],
                "{threads} threads"
            );
            let slice_of = |row: usize| match row {
                0..=6 => 1,
                7..=29 => 3,
                30..=48 => 4,
                _ => 5,
            };
            for r in 0..rows {
                assert!(data[r * 3..(r + 1) * 3].iter().all(|&v| v == slice_of(r)));
                assert!(aux[r * 2..(r + 1) * 2]
                    .iter()
                    .all(|&v| v == 10 * slice_of(r)));
            }
        }
        let pool = Pool::new(4);
        let (mut a, mut b): (Vec<u8>, Vec<u8>) = (Vec::new(), Vec::new());
        assert!(pool
            .map_slices2_mut(&mut a, &[], &mut b, &[], |_, _: &mut [u8], _: &mut [u8]| 0)
            .is_empty());
    }

    #[test]
    fn even_ranges_tile_the_index_space() {
        for (n, parts) in [
            (0usize, 4usize),
            (1, 4),
            (10, 3),
            (10, 1),
            (3, 16),
            (100, 7),
        ] {
            let ranges = even_ranges(n, parts);
            assert!(!ranges.is_empty());
            assert_eq!(ranges.first().map(|r| r.start), Some(0));
            assert_eq!(ranges.last().map(|r| r.end), Some(n));
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "n {n} parts {parts}");
            }
            if n > 0 {
                assert!(ranges.iter().all(|r| !r.is_empty()), "n {n} parts {parts}");
            }
        }
    }

    #[test]
    fn exclusive_prefix_sum_yields_chunk_write_offsets() {
        let (offsets, total) = exclusive_prefix_sum([3usize, 0, 5, 1]);
        assert_eq!(offsets, vec![0, 3, 3, 8]);
        assert_eq!(total, 9);
        let (offsets, total) = exclusive_prefix_sum(std::iter::empty());
        assert!(offsets.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn independent_or_fold_replays_the_sequential_recurrence_bitwise() {
        let probs: Vec<f64> = (0..1000)
            .map(|i| ((i * 37 + 11) % 97) as f64 / 97.0)
            .collect();
        // The reference: Fig. 8's root accumulator update applied in order.
        let mut acc = 0.0f64;
        for &p in &probs {
            acc = 1.0 - (1.0 - p) * (1.0 - acc);
        }
        assert_eq!(
            independent_or_fold(probs.iter().copied()).to_bits(),
            acc.to_bits()
        );
        // Splitting the fold into an arbitrary prefix/suffix and re-folding
        // the concatenated per-partition values is the same fold: partials
        // are per-partition, not per-chunk, so chunking cannot perturb it.
        for cut in [0, 1, 500, 999, 1000] {
            let (a, b) = probs.split_at(cut);
            let rejoined: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
            assert_eq!(
                independent_or_fold(rejoined.iter().copied()).to_bits(),
                acc.to_bits(),
                "cut {cut}"
            );
        }
        assert_eq!(independent_or_fold([]), 0.0);
        assert_eq!(independent_or(0.25, 0.0), 1.0 - (1.0 - 0.25) * 1.0);
    }

    #[test]
    fn sorted_permutation_matches_sequential_stable_sort() {
        // Keys with many duplicates so stability is observable.
        let keys: Vec<u32> = (0..1000).map(|i| (i * 37 + 11) % 10).collect();
        let compare = |a: u32, b: u32| keys[a as usize].cmp(&keys[b as usize]);
        let mut expected: Vec<u32> = (0..keys.len() as u32).collect();
        expected.sort_by(|&a, &b| compare(a, b));
        for threads in [1, 2, 3, 4, 8] {
            let pool = Pool::new(threads);
            let got = sorted_permutation_by(keys.len(), &pool, compare);
            assert_eq!(got, expected, "{threads} threads");
        }
    }

    /// Runs `f` with the default panic hook silenced, so expected injected
    /// panics don't spam test output.
    fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = f();
        std::panic::set_hook(hook);
        r
    }

    #[test]
    fn try_map_matches_map_on_the_happy_path() {
        let tasks: Vec<usize> = (0..600).collect();
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let want = pool.map(&tasks, |t| t * 3);
            let got = pool
                .try_map(&tasks, |i, t| {
                    assert_eq!(i, *t);
                    Ok::<usize, ()>(t * 3)
                })
                .unwrap();
            assert_eq!(got, want, "{threads} threads");
        }
    }

    #[test]
    fn try_map_reports_closure_errors_with_their_item() {
        let tasks: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let err = pool
                .try_map(&tasks, |i, t| {
                    if *t == 42 {
                        Err(format!("bad item {i}"))
                    } else {
                        Ok(*t)
                    }
                })
                .unwrap_err();
            match err {
                TaskFailure::Err { item, error } => {
                    assert_eq!(item, 42, "{threads} threads");
                    assert_eq!(error, "bad item 42");
                }
                other => panic!("expected Err failure, got {other:?}"),
            }
            // The pool stays reusable after a failed fan-out.
            assert_eq!(pool.try_map(&tasks, |_, t| Ok::<_, ()>(*t)).unwrap(), tasks);
        }
    }

    #[test]
    fn try_map_isolates_worker_panics_and_leaves_the_pool_reusable() {
        let tasks: Vec<usize> = (0..200).collect();
        quiet_panics(|| {
            for threads in [1, 2, 4, 8] {
                let pool = Pool::new(threads);
                let err = pool
                    .try_map(&tasks, |_, t| {
                        if *t == 7 {
                            panic!("injected panic on {t}");
                        }
                        Ok::<usize, ()>(*t)
                    })
                    .unwrap_err();
                match err {
                    TaskFailure::Panic { item, message } => {
                        assert_eq!(item, 7, "{threads} threads");
                        assert!(message.contains("injected panic on 7"), "{message}");
                    }
                    other => panic!("expected Panic failure, got {other:?}"),
                }
                // Pool is reusable: the scope joined every worker cleanly.
                let doubled = pool.try_map(&tasks, |_, t| Ok::<_, ()>(t * 2)).unwrap();
                assert_eq!(doubled[7], 14, "{threads} threads");
            }
        });
    }

    #[test]
    fn try_map_reports_the_lowest_indexed_failure_when_single() {
        // With exactly one failing item the reported failure is fully
        // deterministic at every thread count (the fault-injection case).
        let tasks: Vec<usize> = (0..500).collect();
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let err = pool
                .try_map(&tasks, |i, _| if i == 123 { Err(i) } else { Ok(()) })
                .unwrap_err();
            assert_eq!(err.item(), 123, "{threads} threads");
        }
    }

    #[test]
    fn try_map_ranges_passes_range_indices() {
        let pool = Pool::new(4);
        let ranges = even_ranges(100, 7);
        let got = pool
            .try_map_ranges(&ranges, |i, r| Ok::<_, ()>((i, r.len())))
            .unwrap();
        for (i, (ri, len)) in got.iter().enumerate() {
            assert_eq!(i, *ri);
            assert_eq!(*len, ranges[i].len());
        }
    }

    #[test]
    fn try_map_slices_mut_err_means_discard_the_buffer() {
        // The poisoned-state contract: on Err, segments that ran were
        // written; the caller must discard the buffer. The combinator must
        // report the failure (never return Ok) and stay reusable.
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let mut data = vec![0usize; 100];
            let bounds = vec![0, 25, 50, 75];
            let err = pool
                .try_map_slices_mut(&mut data, &bounds, |i, slice| {
                    if i == 2 {
                        return Err("slice 2 refused");
                    }
                    for v in slice.iter_mut() {
                        *v = i + 1;
                    }
                    Ok(())
                })
                .unwrap_err();
            match err {
                TaskFailure::Err { item, error } => {
                    assert_eq!(item, 2, "{threads} threads");
                    assert_eq!(error, "slice 2 refused");
                }
                other => panic!("expected Err failure, got {other:?}"),
            }
            // Reusable afterwards; a clean run writes every segment.
            let mut fresh = vec![0usize; 100];
            pool.try_map_slices_mut(&mut fresh, &bounds, |i, slice| {
                for v in slice.iter_mut() {
                    *v = i + 1;
                }
                Ok::<_, ()>(())
            })
            .unwrap();
            assert!(fresh.iter().all(|&v| v >= 1));
        }
    }

    #[test]
    fn map_slices_mut_panics_rather_than_returning_a_poisoned_buffer() {
        // Satellite regression: a worker panic must never let
        // `map_slices_mut` return *normally* with some segments written and
        // others not. The call panics on the calling thread (naming the
        // slice), and the buffer is only observable to code that
        // deliberately catches — which must then discard it.
        quiet_panics(|| {
            for threads in [1, 2, 4, 8] {
                let pool = Pool::new(threads);
                let mut data = vec![0usize; 80];
                let bounds = vec![0, 20, 40, 60];
                let result = catch_unwind(AssertUnwindSafe(|| {
                    pool.map_slices_mut(&mut data, &bounds, |i, slice| {
                        if i == 1 {
                            panic!("injected slice panic");
                        }
                        for v in slice.iter_mut() {
                            *v = 1;
                        }
                    });
                }));
                let payload = result.expect_err("worker panic must propagate, not be swallowed");
                let message = panic_message(payload);
                assert!(
                    message.contains("slice 1") && message.contains("injected slice panic"),
                    "{threads} threads: {message}"
                );
                // The pool (scoped threads) survived and is reusable.
                let mut fresh = vec![0usize; 80];
                pool.map_slices_mut(&mut fresh, &bounds, |_, slice| {
                    for v in slice.iter_mut() {
                        *v = 7;
                    }
                });
                assert!(fresh.iter().all(|&v| v == 7), "{threads} threads");
            }
        });
    }

    #[test]
    fn try_map_slices2_mut_happy_path_matches_infallible() {
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let rows = 50usize;
            let mut data = vec![0usize; rows * 3];
            let mut aux = vec![0usize; rows * 2];
            let row_cuts = [0usize, 7, 7, 30, 49];
            let data_bounds: Vec<usize> = row_cuts.iter().map(|r| r * 3).collect();
            let aux_bounds: Vec<usize> = row_cuts.iter().map(|r| r * 2).collect();
            let lens = pool
                .try_map_slices2_mut(&mut data, &data_bounds, &mut aux, &aux_bounds, |i, d, a| {
                    for v in d.iter_mut() {
                        *v = i + 1;
                    }
                    for v in a.iter_mut() {
                        *v = 10 * (i + 1);
                    }
                    Ok::<_, ()>((d.len(), a.len()))
                })
                .unwrap();
            assert_eq!(
                lens,
                vec![(21, 14), (0, 0), (69, 46), (57, 38), (3, 2)],
                "{threads} threads"
            );
        }
    }

    #[test]
    fn sorted_permutation_tiny_inputs() {
        let pool = Pool::new(4);
        assert!(sorted_permutation_by(0, &pool, |_, _| std::cmp::Ordering::Equal).is_empty());
        assert_eq!(
            sorted_permutation_by(1, &pool, |_, _| std::cmp::Ordering::Equal),
            vec![0]
        );
    }
}
