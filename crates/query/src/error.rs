//! Error type for the query layer.

use std::fmt;

/// Errors raised while analysing or rewriting queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query mentions the same relation name twice (self-joins are out of
    /// scope for the paper's tractability results).
    SelfJoin(String),
    /// A head (projection) attribute does not occur in any relation atom.
    UnknownHeadAttribute(String),
    /// A selection predicate references an attribute not in its relation.
    UnknownPredicateAttribute {
        /// The relation the predicate was attached to.
        relation: String,
        /// The missing attribute.
        attribute: String,
    },
    /// A referenced relation atom does not exist in the query.
    UnknownRelation(String),
    /// The query (or its FD-reduct) is not hierarchical, so no signature can
    /// be derived for it.
    NotHierarchical {
        /// Human-readable witness of the violation.
        witness: String,
    },
    /// The query has no relation atoms.
    EmptyQuery,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::SelfJoin(r) => write!(f, "relation {r} occurs more than once (self-join)"),
            QueryError::UnknownHeadAttribute(a) => {
                write!(f, "head attribute {a} does not occur in any relation")
            }
            QueryError::UnknownPredicateAttribute {
                relation,
                attribute,
            } => write!(
                f,
                "predicate attribute {attribute} does not occur in relation {relation}"
            ),
            QueryError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            QueryError::NotHierarchical { witness } => {
                write!(f, "query is not hierarchical: {witness}")
            }
            QueryError::EmptyQuery => write!(f, "query has no relation atoms"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Convenience result alias for the query layer.
pub type QueryResult<T> = Result<T, QueryError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(QueryError::SelfJoin("R".into()).to_string().contains("R"));
        assert!(QueryError::NotHierarchical {
            witness: "okey vs ckey".into()
        }
        .to_string()
        .contains("okey"));
    }
}
