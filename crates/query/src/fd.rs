//! Functional dependencies, attribute closure and the chase.
//!
//! Section IV of the paper: a functional dependency holds in a
//! tuple-independent probabilistic database iff it holds in each possible
//! world, so the classical notions apply unchanged. The closure
//! `CLOSURE_Σ(A)` of an attribute set `A` under a set of dependencies `Σ` is
//! computed by the usual fixpoint ("the chase"), e.g.
//! `CLOSURE_{A→D; BD→E}(ABC) = ABCDE`.

use std::collections::BTreeSet;
use std::fmt;

use pdb_storage::catalog::FdDecl;

/// A functional dependency `lhs → rhs`, optionally annotated with the
/// relation it was declared on.
///
/// Because the paper's queries use natural joins (shared attribute names),
/// the closure computation treats dependencies globally over attribute names;
/// the `relation` annotation is informational and used for display and for
/// validating declarations against schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalDependency {
    /// Relation the dependency was declared on, if any.
    pub relation: Option<String>,
    /// Determinant attribute set.
    pub lhs: BTreeSet<String>,
    /// Dependent attribute set.
    pub rhs: BTreeSet<String>,
}

impl FunctionalDependency {
    /// Creates a dependency without a relation annotation.
    pub fn new(lhs: &[&str], rhs: &[&str]) -> Self {
        FunctionalDependency {
            relation: None,
            lhs: lhs.iter().map(|s| s.to_string()).collect(),
            rhs: rhs.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Creates a dependency declared on a relation.
    pub fn on(relation: impl Into<String>, lhs: &[&str], rhs: &[&str]) -> Self {
        FunctionalDependency {
            relation: Some(relation.into()),
            ..FunctionalDependency::new(lhs, rhs)
        }
    }
}

impl fmt::Display for FunctionalDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(r) = &self.relation {
            write!(f, "{r}: ")?;
        }
        write!(
            f,
            "{} → {}",
            self.lhs.iter().cloned().collect::<Vec<_>>().join(" "),
            self.rhs.iter().cloned().collect::<Vec<_>>().join(" ")
        )
    }
}

/// A set of functional dependencies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FdSet {
    fds: Vec<FunctionalDependency>,
}

impl FdSet {
    /// The empty dependency set.
    pub fn empty() -> Self {
        FdSet::default()
    }

    /// Creates a set from a list of dependencies.
    pub fn new(fds: Vec<FunctionalDependency>) -> Self {
        FdSet { fds }
    }

    /// Builds an [`FdSet`] from catalog declarations (keys are already
    /// expanded into dependencies by the catalog).
    pub fn from_catalog_decls(decls: &[FdDecl]) -> Self {
        FdSet {
            fds: decls
                .iter()
                .map(|d| FunctionalDependency {
                    relation: Some(d.table.clone()),
                    lhs: d.lhs.iter().cloned().collect(),
                    rhs: d.rhs.iter().cloned().collect(),
                })
                .collect(),
        }
    }

    /// Adds a dependency.
    pub fn add(&mut self, fd: FunctionalDependency) {
        self.fds.push(fd);
    }

    /// The dependencies in this set.
    pub fn fds(&self) -> &[FunctionalDependency] {
        &self.fds
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Number of dependencies.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// `CLOSURE_Σ(attrs)`: the fixpoint of repeatedly adding `rhs` whenever
    /// `lhs ⊆` the current set (the chase on attribute sets).
    pub fn closure(&self, attrs: &BTreeSet<String>) -> BTreeSet<String> {
        let mut closure = attrs.clone();
        loop {
            let before = closure.len();
            for fd in &self.fds {
                if fd.lhs.is_subset(&closure) {
                    closure.extend(fd.rhs.iter().cloned());
                }
            }
            if closure.len() == before {
                return closure;
            }
        }
    }

    /// Closure of a slice of attribute names.
    pub fn closure_of(&self, attrs: &[&str]) -> BTreeSet<String> {
        self.closure(&attrs.iter().map(|s| s.to_string()).collect())
    }

    /// Whether `lhs → rhs` is implied by this set (`rhs ⊆ CLOSURE(lhs)`).
    pub fn implies(&self, lhs: &[&str], rhs: &[&str]) -> bool {
        let cl = self.closure_of(lhs);
        rhs.iter().all(|a| cl.contains(*a))
    }

    /// Whether `a` and `b` have the same closure (used to detect redundant
    /// signature refinements).
    pub fn equivalent(&self, a: &BTreeSet<String>, b: &BTreeSet<String>) -> bool {
        self.closure(a) == self.closure(b)
    }
}

impl fmt::Display for FdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fd) in self.fds.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{fd}")?;
        }
        write!(f, "}}")
    }
}

/// Attribute-set literal helper used across tests.
pub fn attr_set(attrs: &[&str]) -> BTreeSet<String> {
    attrs.iter().map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_matches_paper_example() {
        // CLOSURE_{A→D; BD→E}(ABC) = ABCDE (Section IV).
        let fds = FdSet::new(vec![
            FunctionalDependency::new(&["A"], &["D"]),
            FunctionalDependency::new(&["B", "D"], &["E"]),
        ]);
        assert_eq!(
            fds.closure_of(&["A", "B", "C"]),
            attr_set(&["A", "B", "C", "D", "E"])
        );
    }

    #[test]
    fn closure_without_fds_is_identity() {
        let fds = FdSet::empty();
        assert_eq!(fds.closure_of(&["x", "y"]), attr_set(&["x", "y"]));
        assert!(fds.is_empty());
        assert_eq!(fds.len(), 0);
    }

    #[test]
    fn closure_requires_full_lhs() {
        let fds = FdSet::new(vec![FunctionalDependency::new(&["A", "B"], &["C"])]);
        assert_eq!(fds.closure_of(&["A"]), attr_set(&["A"]));
        assert_eq!(fds.closure_of(&["A", "B"]), attr_set(&["A", "B", "C"]));
    }

    #[test]
    fn implies_and_equivalence() {
        let fds = FdSet::new(vec![
            FunctionalDependency::on("Ord", &["okey"], &["ckey", "odate"]),
            FunctionalDependency::on("Cust", &["ckey"], &["cname"]),
        ]);
        assert!(fds.implies(&["okey"], &["cname"]));
        assert!(!fds.implies(&["ckey"], &["okey"]));
        assert!(fds.equivalent(&attr_set(&["okey"]), &attr_set(&["okey", "ckey", "odate"])));
        assert!(!fds.equivalent(&attr_set(&["ckey"]), &attr_set(&["okey"])));
    }

    #[test]
    fn from_catalog_decls_round_trips() {
        let decls = vec![FdDecl {
            table: "Ord".into(),
            lhs: vec!["okey".into()],
            rhs: vec!["ckey".into(), "odate".into()],
        }];
        let fds = FdSet::from_catalog_decls(&decls);
        assert_eq!(fds.len(), 1);
        assert!(fds.implies(&["okey"], &["odate"]));
        assert_eq!(fds.fds()[0].relation.as_deref(), Some("Ord"));
    }

    #[test]
    fn transitive_chain_closure() {
        let fds = FdSet::new(vec![
            FunctionalDependency::new(&["a"], &["b"]),
            FunctionalDependency::new(&["b"], &["c"]),
            FunctionalDependency::new(&["c"], &["d"]),
        ]);
        assert_eq!(fds.closure_of(&["a"]), attr_set(&["a", "b", "c", "d"]));
    }

    #[test]
    fn display_forms() {
        let fd = FunctionalDependency::on("Ord", &["okey"], &["ckey"]);
        assert_eq!(fd.to_string(), "Ord: okey → ckey");
        let set = FdSet::new(vec![fd]);
        assert!(set.to_string().contains("Ord: okey → ckey"));
    }
}
