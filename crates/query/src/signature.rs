//! Query signatures and everything derived from them.
//!
//! A signature (Definition III.1) is a table name `R`, a starred signature
//! `α*`, or a concatenation `αβ`. Signatures capture the one/many-to-one/many
//! relationships between the tables of a hierarchical query and coincide with
//! the nesting structure of the one-occurrence form (1OF) of the lineage of
//! the query's answer tuples.
//!
//! This module implements:
//!
//! * derivation of signatures from query trees (Fig. 4), with functional
//!   dependencies refining `α*` to `α` when the parent label determines all
//!   attributes of `α` (Example III.2, Section V.B last paragraph);
//! * the equivalence `(α*)* = α*` (kept implicit by construction);
//! * minimal covers (Definition III.3);
//! * the 1scan property, `#scans` (Definition V.8, Proposition V.10) and the
//!   scan schedule of Example V.11;
//! * the `1scanTree` used by the streaming operator (Section V.C) and the
//!   sort order it requires (Example V.12);
//! * the restriction / table-replacement rules used when placing operators
//!   inside plans (Section V.B, Example V.6).

use std::collections::BTreeSet;
use std::fmt;

use crate::error::{QueryError, QueryResult};
use crate::fd::FdSet;
use crate::hierarchy::QueryTree;

/// A query signature (Definition III.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Signature {
    /// A table name.
    Table(String),
    /// `α*`: a group of several independent `α`-blocks.
    Star(Box<Signature>),
    /// `αβ…`: a concatenation of signatures over disjoint variable sets.
    Concat(Vec<Signature>),
}

impl Signature {
    /// A bare table signature.
    pub fn table(name: impl Into<String>) -> Signature {
        Signature::Table(name.into())
    }

    /// Wraps a signature in a star, collapsing `(α*)*` to `α*` (the paper's
    /// implicit equivalence).
    pub fn star(inner: Signature) -> Signature {
        match inner {
            Signature::Star(s) => Signature::Star(s),
            other => Signature::Star(Box::new(other)),
        }
    }

    /// Concatenates signatures, flattening nested concatenations and
    /// unwrapping singleton lists.
    pub fn concat(parts: Vec<Signature>) -> Signature {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Signature::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("len checked")
        } else {
            Signature::Concat(flat)
        }
    }

    /// All table names mentioned, in left-to-right order.
    pub fn tables(&self) -> Vec<String> {
        match self {
            Signature::Table(r) => vec![r.clone()],
            Signature::Star(s) => s.tables(),
            Signature::Concat(parts) => parts.iter().flat_map(|p| p.tables()).collect(),
        }
    }

    /// The leftmost table name. This is the representative column an operator
    /// with this signature leaves behind (Section V.B: "we replace in s each
    /// of their signatures t by the leftmost table name in t").
    pub fn leftmost_table(&self) -> &str {
        match self {
            Signature::Table(r) => r,
            Signature::Star(s) => s.leftmost_table(),
            Signature::Concat(parts) => parts[0].leftmost_table(),
        }
    }

    /// Whether the signature mentions table `name`.
    pub fn contains_table(&self, name: &str) -> bool {
        match self {
            Signature::Table(r) => r == name,
            Signature::Star(s) => s.contains_table(name),
            Signature::Concat(parts) => parts.iter().any(|p| p.contains_table(name)),
        }
    }

    /// Whether any star occurs anywhere in the signature. A star-free
    /// signature describes an answer without duplicates, whose probabilities
    /// are obtained by pure propagation (products).
    pub fn has_star(&self) -> bool {
        match self {
            Signature::Table(_) => false,
            Signature::Star(_) => true,
            Signature::Concat(parts) => parts.iter().any(|p| p.has_star()),
        }
    }

    /// Number of aggregation steps (stars) in the signature; the GRP-sequence
    /// semantics of Fig. 5 issues one group-by per star.
    pub fn star_count(&self) -> usize {
        match self {
            Signature::Table(_) => 0,
            Signature::Star(s) => 1 + s.star_count(),
            Signature::Concat(parts) => parts.iter().map(|p| p.star_count()).sum(),
        }
    }

    /// Whether a bare (unstarred) table occurs at the top level of this
    /// signature — the existence condition of Definition V.8.
    fn has_bare_table_at_top(&self) -> bool {
        match self {
            Signature::Table(_) => true,
            Signature::Star(_) => false,
            Signature::Concat(parts) => parts.iter().any(|p| matches!(p, Signature::Table(_))),
        }
    }

    /// The 1scan property (Definition V.8): every starred subexpression `β*`
    /// must contain a bare table at the top level of `β` and `β` must itself
    /// have the property.
    pub fn is_one_scan(&self) -> bool {
        match self {
            Signature::Table(_) => true,
            Signature::Star(inner) => inner.has_bare_table_at_top() && inner.is_one_scan(),
            Signature::Concat(parts) => parts.iter().all(|p| p.is_one_scan()),
        }
    }

    /// Counts starred subexpressions (including this one) that lack the 1scan
    /// property.
    fn non_one_scan_stars(&self) -> usize {
        match self {
            Signature::Table(_) => 0,
            Signature::Star(inner) => {
                let own = usize::from(!self.is_one_scan());
                own + inner.non_one_scan_stars()
            }
            Signature::Concat(parts) => parts.iter().map(|p| p.non_one_scan_stars()).sum(),
        }
    }

    /// `#scans` (Definition V.8): one plus the number of starred
    /// subexpressions without the 1scan property.
    pub fn scan_count(&self) -> usize {
        1 + self.non_one_scan_stars()
    }

    /// Computes the scan schedule of an operator `[self]` (Example V.11): a
    /// sequence of *pre-aggregation* signatures — each with the 1scan
    /// property — that are evaluated as separate scans, plus the final 1scan
    /// signature evaluated last. Applying a pre-aggregation `[γ]` replaces
    /// `γ` in the remaining signature by its leftmost table.
    ///
    /// The schedule has exactly `scan_count() - 1` pre-aggregations.
    pub fn scan_schedule(&self) -> ScanSchedule {
        let mut steps = Vec::new();
        let mut current = self.clone();
        loop {
            match take_innermost_blocking_star(&mut current) {
                None => {
                    return ScanSchedule {
                        pre_aggregations: steps,
                        final_signature: current,
                    }
                }
                Some(step) => steps.push(step),
            }
        }
    }

    /// Restricts the signature to the given tables, dropping leaves of absent
    /// tables and pruning empty stars/concats. Returns `None` if no table
    /// remains.
    pub fn restrict_to_tables(&self, tables: &BTreeSet<String>) -> Option<Signature> {
        match self {
            Signature::Table(r) => tables.contains(r).then(|| Signature::Table(r.clone())),
            Signature::Star(inner) => inner.restrict_to_tables(tables).map(Signature::star),
            Signature::Concat(parts) => {
                let kept: Vec<Signature> = parts
                    .iter()
                    .filter_map(|p| p.restrict_to_tables(tables))
                    .collect();
                if kept.is_empty() {
                    None
                } else {
                    Some(Signature::concat(kept))
                }
            }
        }
    }

    /// Replaces the *maximal starred subexpression whose leftmost table is
    /// `table`* — or, if none, the bare leaf `table` — by the bare table
    /// name. This is the signature update performed after a nested operator
    /// has aggregated that part of the answer (Section V.B, Example V.6).
    pub fn reduce_table(&self, table: &str) -> Signature {
        match self {
            Signature::Table(r) => Signature::Table(r.clone()),
            Signature::Star(inner) => {
                if inner.leftmost_table() == table && inner.contains_table(table) {
                    Signature::Table(table.to_string())
                } else {
                    Signature::star(inner.reduce_table(table))
                }
            }
            Signature::Concat(parts) => {
                Signature::concat(parts.iter().map(|p| p.reduce_table(table)).collect())
            }
        }
    }

    /// Replaces every starred table leaf `R*` by the bare `R` for each `R` in
    /// `tables` (the per-table variant of [`Signature::reduce_table`], used
    /// by eager plans after base-table aggregation).
    pub fn reduce_starred_tables(&self, tables: &BTreeSet<String>) -> Signature {
        match self {
            Signature::Table(r) => Signature::Table(r.clone()),
            Signature::Star(inner) => {
                if let Signature::Table(r) = inner.as_ref() {
                    if tables.contains(r) {
                        return Signature::Table(r.clone());
                    }
                }
                Signature::star(inner.reduce_starred_tables(tables))
            }
            Signature::Concat(parts) => Signature::concat(
                parts
                    .iter()
                    .map(|p| p.reduce_starred_tables(tables))
                    .collect(),
            ),
        }
    }
}

/// The scan schedule of an operator (Example V.11).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanSchedule {
    /// Pre-aggregation signatures, each evaluated in its own scan,
    /// innermost-first. Each has the 1scan property.
    pub pre_aggregations: Vec<Signature>,
    /// The remaining signature evaluated by the final scan; has the 1scan
    /// property.
    pub final_signature: Signature,
}

impl ScanSchedule {
    /// Total number of scans (pre-aggregations plus the final scan).
    pub fn scans(&self) -> usize {
        self.pre_aggregations.len() + 1
    }
}

/// Finds the innermost starred subexpression of `sig` that lacks the 1scan
/// property, removes the blockage by picking its first starred child `γ*`
/// (preferring starred tables), replaces `γ*` by `γ`'s leftmost table inside
/// `sig`, and returns the extracted `γ*`. Returns `None` when `sig` already
/// has the 1scan property.
fn take_innermost_blocking_star(sig: &mut Signature) -> Option<Signature> {
    if sig.is_one_scan() {
        return None;
    }
    // Descend into children first so the innermost blocking star is handled.
    match sig {
        Signature::Table(_) => None,
        Signature::Concat(parts) => {
            for p in parts.iter_mut() {
                if let Some(step) = take_innermost_blocking_star(p) {
                    return Some(step);
                }
            }
            None
        }
        Signature::Star(inner) => {
            if let Some(step) = take_innermost_blocking_star(inner) {
                return Some(step);
            }
            // All descendants are 1scan but this star is not: its body has no
            // bare table at the top level, so every top-level part is starred.
            let parts: Vec<&Signature> = match inner.as_ref() {
                Signature::Concat(parts) => parts.iter().collect(),
                single => vec![single],
            };
            let chosen_idx = parts
                .iter()
                .position(|p| matches!(p, Signature::Star(b) if matches!(b.as_ref(), Signature::Table(_))))
                .or_else(|| parts.iter().position(|p| matches!(p, Signature::Star(_))))?;
            let chosen = parts[chosen_idx].clone();
            let replacement = Signature::Table(chosen.leftmost_table().to_string());
            // Rebuild the inner body with the chosen part replaced.
            let new_inner = match inner.as_ref() {
                Signature::Concat(parts) => {
                    let mut new_parts = parts.clone();
                    new_parts[chosen_idx] = replacement;
                    Signature::concat(new_parts)
                }
                _ => replacement,
            };
            **inner = new_inner;
            Some(chosen)
        }
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Signature::Table(r) => write!(f, "{r}"),
            Signature::Star(inner) => match inner.as_ref() {
                Signature::Table(r) => write!(f, "{r}*"),
                other => write!(f, "({other})*"),
            },
            Signature::Concat(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
        }
    }
}

/// Derives the signature of a hierarchical Boolean query tree (Fig. 4),
/// refined by functional dependencies: a node (leaf or inner) is *not*
/// starred when its attributes are contained in `CLOSURE_Σ(L)` of the parent
/// label `L`. With `Σ = ∅` this degenerates to the equality test of Fig. 4.
pub fn signature_of_tree(tree: &QueryTree, fds: &FdSet) -> Signature {
    signature_rec(tree, &BTreeSet::new(), fds)
}

fn signature_rec(tree: &QueryTree, parent: &BTreeSet<String>, fds: &FdSet) -> Signature {
    let parent_closure = fds.closure(parent);
    match tree {
        QueryTree::Leaf { relation, attrs } => {
            let base = Signature::table(relation.clone());
            if attrs.is_subset(&parent_closure) {
                base
            } else {
                Signature::star(base)
            }
        }
        QueryTree::Inner { attrs, children } => {
            let body = Signature::concat(
                children
                    .iter()
                    .map(|c| signature_rec(c, attrs, fds))
                    .collect(),
            );
            if attrs.is_subset(&parent_closure) {
                body
            } else {
                Signature::star(body)
            }
        }
    }
}

/// The minimal cover of a set of tables in a query tree (Definition III.3):
/// the signature of the minimal subtree containing all tables of `tables`.
///
/// # Errors
/// Returns [`QueryError::UnknownRelation`] if a table is absent from the tree.
pub fn minimal_cover(
    tree: &QueryTree,
    fds: &FdSet,
    tables: &BTreeSet<String>,
) -> QueryResult<Signature> {
    let (subtree, parent_attrs) = tree.minimal_subtree(tables).ok_or_else(|| {
        QueryError::UnknownRelation(
            tables
                .iter()
                .find(|t| !tree.contains_relation(t))
                .cloned()
                .unwrap_or_else(|| "<empty table set>".to_string()),
        )
    })?;
    Ok(signature_rec(subtree, &parent_attrs, fds))
}

/// A node of the `1scanTree` (Section V.C): each node corresponds to one
/// variable column (one table) of the query answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneScanTree {
    /// The table whose variable column this node tracks.
    pub table: String,
    /// Child nodes.
    pub children: Vec<OneScanTree>,
}

impl OneScanTree {
    /// Builds the 1scanTree of a signature with the 1scan property: every
    /// inner node of the signature's nesting structure is replaced by one of
    /// its children that is a bare table.
    ///
    /// # Errors
    /// Returns [`QueryError::NotHierarchical`] if the signature does not have
    /// the 1scan property (no bare table to promote at some level).
    pub fn build(sig: &Signature) -> QueryResult<OneScanTree> {
        match sig {
            Signature::Table(r) => Ok(OneScanTree {
                table: r.clone(),
                children: Vec::new(),
            }),
            Signature::Star(inner) => OneScanTree::build(inner),
            Signature::Concat(parts) => {
                // Promote the first bare table to be the root of this level.
                let root_idx = parts
                    .iter()
                    .position(|p| matches!(p, Signature::Table(_)))
                    .ok_or_else(|| QueryError::NotHierarchical {
                        witness: format!("signature {sig} lacks the 1scan property"),
                    })?;
                let root_table = match &parts[root_idx] {
                    Signature::Table(r) => r.clone(),
                    _ => unreachable!("position() matched a Table"),
                };
                let mut children = Vec::new();
                for (i, p) in parts.iter().enumerate() {
                    if i == root_idx {
                        continue;
                    }
                    children.push(OneScanTree::build(p)?);
                }
                Ok(OneScanTree {
                    table: root_table,
                    children,
                })
            }
        }
    }

    /// Preorder traversal of table names; concatenated with the data columns
    /// this yields the sort order required by the streaming operator
    /// (Example V.12).
    pub fn preorder(&self) -> Vec<String> {
        let mut out = vec![self.table.clone()];
        for c in &self.children {
            out.extend(c.preorder());
        }
        out
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(|c| c.len()).sum::<usize>()
    }

    /// A 1scanTree always has at least one node.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for OneScanTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table)?;
        if !self.children.is_empty() {
            write!(f, "(")?;
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::intro_query_q;
    use crate::fd::{attr_set, FdSet, FunctionalDependency};
    use crate::hierarchy::QueryTree;

    fn sig(s: &str) -> Signature {
        // Tiny recursive-descent parser for test readability: tables are
        // single uppercase words, grouping with parens, star with '*'.
        fn parse(chars: &[char], pos: &mut usize) -> Signature {
            let mut parts = Vec::new();
            while *pos < chars.len() {
                match chars[*pos] {
                    ')' => break,
                    ' ' => {
                        *pos += 1;
                    }
                    '(' => {
                        *pos += 1;
                        let inner = parse(chars, pos);
                        assert_eq!(chars[*pos], ')');
                        *pos += 1;
                        let mut part = inner;
                        while *pos < chars.len() && chars[*pos] == '*' {
                            part = Signature::star(part);
                            *pos += 1;
                        }
                        parts.push(part);
                    }
                    _ => {
                        let start = *pos;
                        while *pos < chars.len() && chars[*pos].is_alphanumeric() {
                            *pos += 1;
                        }
                        let name: String = chars[start..*pos].iter().collect();
                        let mut part = Signature::table(name);
                        while *pos < chars.len() && chars[*pos] == '*' {
                            part = Signature::star(part);
                            *pos += 1;
                        }
                        parts.push(part);
                    }
                }
            }
            Signature::concat(parts)
        }
        let chars: Vec<char> = s.chars().collect();
        let mut pos = 0;
        parse(&chars, &mut pos)
    }

    fn intro_tree() -> QueryTree {
        QueryTree::build(&intro_query_q().boolean_version()).unwrap()
    }

    fn tpch_like_fds() -> FdSet {
        FdSet::new(vec![
            FunctionalDependency::on("Ord", &["okey"], &["ckey", "odate"]),
            FunctionalDependency::on("Cust", &["ckey"], &["cname"]),
        ])
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(
            sig("(Cust*(Ord*Item*)*)*").to_string(),
            "(Cust* (Ord* Item*)*)*"
        );
        assert_eq!(sig("R*S*").to_string(), "R* S*");
        assert_eq!(sig("Cust Ord Item*").to_string(), "Cust Ord Item*");
    }

    #[test]
    fn star_of_star_collapses() {
        let s = Signature::star(Signature::star(Signature::table("R")));
        assert_eq!(s, sig("R*"));
    }

    #[test]
    fn signature_of_intro_query_without_fds() {
        // Example III.2: (Cust*(Ord*Item*)*)*.
        let tree = intro_tree();
        let s = signature_of_tree(&tree, &FdSet::empty());
        assert_eq!(s, sig("(Cust*(Ord*Item*)*)*"));
    }

    #[test]
    fn signature_of_intro_query_with_keys() {
        // Example III.2: with ckey and okey keys the signature refines to
        // (Cust(Ord Item*)*)*.
        let tree = intro_tree();
        let s = signature_of_tree(&tree, &tpch_like_fds());
        assert_eq!(s, sig("(Cust(Ord Item*)*)*"));
    }

    #[test]
    fn minimal_cover_matches_example_iii4() {
        let tree = intro_tree();
        let fds = FdSet::empty();
        let cover = minimal_cover(&tree, &fds, &attr_set(&["Ord", "Item"])).unwrap();
        assert_eq!(cover, sig("(Ord*Item*)*"));
        let cover = minimal_cover(&tree, &fds, &attr_set(&["Cust", "Ord"])).unwrap();
        assert_eq!(cover, sig("(Cust*(Ord*Item*)*)*"));
        assert!(minimal_cover(&tree, &fds, &attr_set(&["Missing"])).is_err());
    }

    #[test]
    fn one_scan_property_examples() {
        // Example V.9.
        assert!(sig("(Cust(Ord Item*)*)*").is_one_scan());
        assert!(!sig("(Cust*(Ord*Item*)*)*").is_one_scan());
        assert!(sig("R*S*").is_one_scan());
        assert!(sig("Nation1(Supp(Nation2(Cust(Ord Item*)*)*)*)*").is_one_scan());
    }

    #[test]
    fn scan_counts_match_example_v11() {
        assert_eq!(sig("(Cust*(Ord*Item*)*)*").scan_count(), 3);
        assert_eq!(sig("(Cust(Ord Item*)*)*").scan_count(), 1);
        assert_eq!(sig("R*S*").scan_count(), 1);
    }

    #[test]
    fn scan_schedule_matches_example_v11() {
        let schedule = sig("(Cust*(Ord*Item*)*)*").scan_schedule();
        assert_eq!(schedule.scans(), 3);
        assert_eq!(schedule.pre_aggregations, vec![sig("Ord*"), sig("Cust*")]);
        assert_eq!(schedule.final_signature, sig("(Cust(Ord Item*)*)*"));
        assert!(schedule.final_signature.is_one_scan());
    }

    #[test]
    fn scan_schedule_of_one_scan_signature_is_single_scan() {
        let schedule = sig("(Cust(Ord Item*)*)*").scan_schedule();
        assert!(schedule.pre_aggregations.is_empty());
        assert_eq!(schedule.final_signature, sig("(Cust(Ord Item*)*)*"));
    }

    #[test]
    fn scan_schedule_handles_nested_composites() {
        // ((A*B*)*(C*D*)*)* needs 4 scans: [A*], [C*], then one of the two
        // composite children, then the final scan.
        let s = sig("((A*B*)*(C*D*)*)*");
        assert_eq!(s.scan_count(), 4);
        let schedule = s.scan_schedule();
        assert_eq!(schedule.scans(), 4);
        for step in &schedule.pre_aggregations {
            assert!(step.is_one_scan(), "pre-aggregation {step} must be 1scan");
        }
        assert!(schedule.final_signature.is_one_scan());
    }

    #[test]
    fn one_scan_tree_of_refined_intro_signature_is_a_path() {
        // Example V.12: (Cust(Ord Item*)*)* has the path Cust → Ord → Item.
        let t = OneScanTree::build(&sig("(Cust(Ord Item*)*)*")).unwrap();
        assert_eq!(t.preorder(), vec!["Cust", "Ord", "Item"]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.to_string(), "Cust(Ord(Item))");
    }

    #[test]
    fn one_scan_tree_of_branching_signature() {
        // Example V.12: (R1(R2 R3*)*(R4 R5*)*)* serialises as R1(R2(R3), R4(R5)).
        let t = OneScanTree::build(&sig("(R1(R2 R3*)*(R4 R5*)*)*")).unwrap();
        assert_eq!(t.to_string(), "R1(R2(R3), R4(R5))");
        assert_eq!(t.preorder(), vec!["R1", "R2", "R3", "R4", "R5"]);
    }

    #[test]
    fn one_scan_tree_rejects_non_one_scan_signatures() {
        assert!(OneScanTree::build(&sig("(Cust*(Ord*Item*)*)*")).is_err());
    }

    #[test]
    fn restriction_drops_absent_tables() {
        let s = sig("(Cust*(Ord*Item*)*)*");
        let r = s.restrict_to_tables(&attr_set(&["Ord", "Item"])).unwrap();
        assert_eq!(r, sig("(Ord*Item*)*"));
        let r = s.restrict_to_tables(&attr_set(&["Cust", "Ord"])).unwrap();
        assert_eq!(r, sig("(Cust*(Ord*)*)*"));
        assert!(s.restrict_to_tables(&attr_set(&["Nope"])).is_none());
    }

    #[test]
    fn reduce_starred_tables_matches_example_v6() {
        // Replacing Ord*, Cust*, Item* by their bare names turns
        // (Cust*(Ord*Item*)*)* into (Cust(Ord Item)*)*.
        let s = sig("(Cust*(Ord*Item*)*)*");
        let reduced = s.reduce_starred_tables(&attr_set(&["Cust", "Ord", "Item"]));
        assert_eq!(reduced, sig("(Cust(Ord Item)*)*"));
    }

    #[test]
    fn reduce_table_collapses_aggregated_subexpressions() {
        // After executing [(Ord Item)*] the remaining signature replaces that
        // subexpression by Ord: (Cust(Ord Item)*)* becomes (Cust Ord*)... as
        // used in Example V.6 the top operator becomes [(Cust Ord)*].
        let s = sig("(Cust(Ord Item)*)*");
        let reduced = s.reduce_table("Ord");
        assert_eq!(reduced, sig("(Cust Ord)*"));
        // Reducing the leftmost table of the whole signature collapses it.
        assert_eq!(sig("(Cust(Ord Item*)*)*").reduce_table("Cust"), sig("Cust"));
    }

    #[test]
    fn tables_and_leftmost() {
        let s = sig("(Cust*(Ord*Item*)*)*");
        assert_eq!(s.tables(), vec!["Cust", "Ord", "Item"]);
        assert_eq!(s.leftmost_table(), "Cust");
        assert!(s.contains_table("Item"));
        assert!(!s.contains_table("Nation"));
        assert_eq!(s.star_count(), 5);
        assert!(s.has_star());
        assert!(!sig("Cust Ord").has_star());
    }
}
