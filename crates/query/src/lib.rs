//! # pdb-query
//!
//! The static query machinery of the SPROUT paper:
//!
//! * [`cq`] — conjunctive queries without self-joins, `π_A σ_φ (R1 ⋈ … ⋈ Rn)`,
//!   with joins expressed by shared attribute names (paper, Section II.B).
//! * [`fd`] — functional dependencies, attribute closure and the chase.
//! * [`hierarchy`] — the hierarchical property (Definition II.1) and the tree
//!   representation of hierarchical queries (Fig. 3).
//! * [`reduct`] — FD-reducts (Definition IV.1): rewriting (possibly
//!   non-hierarchical, possibly non-Boolean) queries into Boolean queries
//!   whose signature can be used to process the original query.
//! * [`signature`] — query signatures (Definition III.1), their derivation
//!   from query trees (Fig. 4), minimal covers (Definition III.3), the 1scan
//!   property and scan counts (Definition V.8, Proposition V.10), and the
//!   1scanTree used by the streaming confidence-computation operator.

pub mod cq;
pub mod error;
pub mod fd;
pub mod hierarchy;
pub mod reduct;
pub mod signature;

pub use cq::{CompareOp, ConjunctiveQuery, Predicate, RelationAtom};
pub use error::{QueryError, QueryResult};
pub use fd::{FdSet, FunctionalDependency};
pub use hierarchy::{HierarchyStatus, QueryTree};
pub use reduct::FdReduct;
pub use signature::{OneScanTree, Signature};
