//! The hierarchical property and tree representations of hierarchical queries.
//!
//! Definition II.1 of the paper: a Boolean conjunctive query is *hierarchical*
//! if for any two join attributes that occur in the same table, one of them
//! participates in all joins of the other. Equivalently, the sets
//! `atoms(a) = { R : a ∈ sch(R) }` for join attributes `a` form a laminar
//! family. Hierarchical queries admit tree representations (Fig. 3): leaves
//! are tables and inner nodes are join attributes occurring in all their
//! descendants.
//!
//! For non-Boolean queries, attributes that occur in the projection list are
//! not used for deciding the hierarchical property (Section II.B); the
//! principled treatment is the FD-reduct of Section IV, implemented in
//! [`crate::reduct`], which produces the Boolean queries these trees are
//! built from.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::cq::ConjunctiveQuery;
use crate::error::{QueryError, QueryResult};

/// Result of the hierarchical test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyStatus {
    /// The query is hierarchical.
    Hierarchical,
    /// The query is not hierarchical; the witness names two join attributes
    /// sharing a table whose atom sets are incomparable.
    NonHierarchical {
        /// First offending attribute.
        attr_a: String,
        /// Second offending attribute.
        attr_b: String,
        /// A table containing both.
        table: String,
    },
}

impl HierarchyStatus {
    /// Whether the status is [`HierarchyStatus::Hierarchical`].
    pub fn is_hierarchical(&self) -> bool {
        matches!(self, HierarchyStatus::Hierarchical)
    }
}

impl fmt::Display for HierarchyStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyStatus::Hierarchical => write!(f, "hierarchical"),
            HierarchyStatus::NonHierarchical {
                attr_a,
                attr_b,
                table,
            } => write!(
                f,
                "non-hierarchical: {attr_a} and {attr_b} co-occur in {table} but neither \
                 participates in all joins of the other"
            ),
        }
    }
}

/// Checks the hierarchical property of a query, treating it as Boolean
/// (every attribute counts). `ignored` is the set of attributes excluded from
/// the test — pass the head attributes (or their FD-closure) to obtain the
/// non-Boolean variant of Definition II.1.
pub fn hierarchy_status(query: &ConjunctiveQuery, ignored: &BTreeSet<String>) -> HierarchyStatus {
    let occurrences = query.attribute_occurrences();
    let join_attrs: Vec<&String> = occurrences
        .iter()
        .filter(|(a, rels)| rels.len() >= 2 && !ignored.contains(*a))
        .map(|(a, _)| a)
        .collect();
    for (i, a) in join_attrs.iter().enumerate() {
        for b in &join_attrs[i + 1..] {
            let ra = &occurrences[*a];
            let rb = &occurrences[*b];
            let share_table = ra.intersection(rb).next();
            if let Some(table) = share_table {
                if !(ra.is_subset(rb) || rb.is_subset(ra)) {
                    return HierarchyStatus::NonHierarchical {
                        attr_a: (*a).clone(),
                        attr_b: (*b).clone(),
                        table: table.clone(),
                    };
                }
            }
        }
    }
    HierarchyStatus::Hierarchical
}

/// Convenience wrapper: the Boolean hierarchical test (no ignored attributes).
pub fn is_hierarchical_boolean(query: &ConjunctiveQuery) -> bool {
    hierarchy_status(query, &BTreeSet::new()).is_hierarchical()
}

/// Tree representation of a hierarchical Boolean query (paper, Fig. 3).
///
/// Inner nodes carry the *cumulative* attribute label (the join attributes of
/// the node together with those of all its ancestors), matching the `L`
/// parameter threading of the signature derivation in Fig. 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryTree {
    /// An inner node labelled with join attributes common to all descendants.
    Inner {
        /// Cumulative attribute label.
        attrs: BTreeSet<String>,
        /// Child subtrees.
        children: Vec<QueryTree>,
    },
    /// A leaf: one relation with its attribute set.
    Leaf {
        /// Relation name.
        relation: String,
        /// Attribute set of the relation (as seen by the query).
        attrs: BTreeSet<String>,
    },
}

impl QueryTree {
    /// Builds the tree representation of a (Boolean) hierarchical query.
    ///
    /// The attribute sets of the query's atoms are taken at face value; build
    /// the tree from an [FD-reduct](crate::reduct::FdReduct) to incorporate
    /// functional dependencies and projections.
    ///
    /// # Errors
    /// Returns [`QueryError::NotHierarchical`] if the recursion gets stuck,
    /// which happens exactly when the query is not hierarchical.
    pub fn build(query: &ConjunctiveQuery) -> QueryResult<QueryTree> {
        let join_attrs = query.join_attributes();
        let atoms: Vec<(String, BTreeSet<String>)> = query
            .relations
            .iter()
            .map(|r| (r.name.clone(), r.attribute_set()))
            .collect();
        build_tree(&atoms, &join_attrs, &BTreeSet::new())
    }

    /// The cumulative attribute label of the root.
    pub fn attrs(&self) -> &BTreeSet<String> {
        match self {
            QueryTree::Inner { attrs, .. } => attrs,
            QueryTree::Leaf { attrs, .. } => attrs,
        }
    }

    /// All relation names in this subtree, in left-to-right leaf order.
    pub fn relations(&self) -> Vec<String> {
        match self {
            QueryTree::Leaf { relation, .. } => vec![relation.clone()],
            QueryTree::Inner { children, .. } => {
                children.iter().flat_map(|c| c.relations()).collect()
            }
        }
    }

    /// Whether this subtree contains the relation `name`.
    pub fn contains_relation(&self, name: &str) -> bool {
        match self {
            QueryTree::Leaf { relation, .. } => relation == name,
            QueryTree::Inner { children, .. } => children.iter().any(|c| c.contains_relation(name)),
        }
    }

    /// The smallest subtree containing every relation in `tables`, together
    /// with the cumulative attribute label of its parent (∅ for the root).
    /// This is the subtree whose signature is the *minimal cover* of
    /// Definition III.3.
    ///
    /// Returns `None` if some relation in `tables` is not in the tree or
    /// `tables` is empty.
    pub fn minimal_subtree(
        &self,
        tables: &BTreeSet<String>,
    ) -> Option<(&QueryTree, BTreeSet<String>)> {
        if tables.is_empty() {
            return None;
        }
        self.minimal_subtree_inner(tables, &BTreeSet::new())
    }

    fn minimal_subtree_inner(
        &self,
        tables: &BTreeSet<String>,
        parent_attrs: &BTreeSet<String>,
    ) -> Option<(&QueryTree, BTreeSet<String>)> {
        if !tables.iter().all(|t| self.contains_relation(t)) {
            return None;
        }
        if let QueryTree::Inner { attrs, children } = self {
            for child in children {
                if let Some(found) = child.minimal_subtree_inner(tables, attrs) {
                    return Some(found);
                }
            }
        }
        Some((self, parent_attrs.clone()))
    }

    /// Depth of the tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            QueryTree::Leaf { .. } => 1,
            QueryTree::Inner { children, .. } => {
                1 + children.iter().map(|c| c.depth()).max().unwrap_or(0)
            }
        }
    }
}

fn build_tree(
    atoms: &[(String, BTreeSet<String>)],
    join_attrs: &BTreeSet<String>,
    inherited: &BTreeSet<String>,
) -> QueryResult<QueryTree> {
    if atoms.is_empty() {
        return Err(QueryError::EmptyQuery);
    }
    if atoms.len() == 1 {
        return Ok(QueryTree::Leaf {
            relation: atoms[0].0.clone(),
            attrs: atoms[0].1.clone(),
        });
    }
    // Join attributes occurring in every atom of this subset extend the label.
    let common: BTreeSet<String> = join_attrs
        .iter()
        .filter(|a| atoms.iter().all(|(_, attrs)| attrs.contains(*a)))
        .cloned()
        .collect();
    let label: BTreeSet<String> = inherited.union(&common).cloned().collect();

    // Partition the remaining atoms by connectivity through join attributes
    // that are not part of the label.
    let components = connected_components(atoms, join_attrs, &label);
    if components.len() == 1 {
        // The atoms are still all connected through attributes we could not
        // lift into the label: the query is not hierarchical.
        let witness = atoms
            .iter()
            .map(|(n, _)| n.clone())
            .collect::<Vec<_>>()
            .join(", ");
        return Err(QueryError::NotHierarchical {
            witness: format!("atoms {{{witness}}} share no common join attribute"),
        });
    }
    let mut children = Vec::with_capacity(components.len());
    for component in components {
        children.push(build_tree(&component, join_attrs, &label)?);
    }
    Ok(QueryTree::Inner {
        attrs: label,
        children,
    })
}

/// Groups `atoms` into connected components where two atoms are adjacent if
/// they share a join attribute outside `label`.
fn connected_components(
    atoms: &[(String, BTreeSet<String>)],
    join_attrs: &BTreeSet<String>,
    label: &BTreeSet<String>,
) -> Vec<Vec<(String, BTreeSet<String>)>> {
    let n = atoms.len();
    let mut component: Vec<usize> = (0..n).collect();
    // Union-find with path halving would be overkill for query-sized inputs;
    // simple label propagation over attribute buckets is clear and fast.
    let mut by_attr: BTreeMap<&String, Vec<usize>> = BTreeMap::new();
    for (i, (_, attrs)) in atoms.iter().enumerate() {
        for a in attrs {
            if join_attrs.contains(a) && !label.contains(a) {
                by_attr.entry(a).or_default().push(i);
            }
        }
    }
    fn find(component: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while component[root] != root {
            root = component[root];
        }
        let mut cur = i;
        while component[cur] != root {
            let next = component[cur];
            component[cur] = root;
            cur = next;
        }
        root
    }
    for members in by_attr.values() {
        for w in members.windows(2) {
            let a = find(&mut component, w[0]);
            let b = find(&mut component, w[1]);
            if a != b {
                component[a] = b;
            }
        }
    }
    // Keep components ordered by the first (smallest-index) atom they
    // contain so that signature derivation preserves the query's atom order.
    type Atom = (String, BTreeSet<String>);
    let mut groups: BTreeMap<usize, Vec<Atom>> = BTreeMap::new();
    let mut first_member: BTreeMap<usize, usize> = BTreeMap::new();
    for (i, atom) in atoms.iter().enumerate().take(n) {
        let root = find(&mut component, i);
        groups.entry(root).or_default().push(atom.clone());
        first_member.entry(root).or_insert(i);
    }
    let mut ordered: Vec<(usize, Vec<Atom>)> = groups
        .into_iter()
        .map(|(root, members)| (first_member[&root], members))
        .collect();
    ordered.sort_by_key(|(first, _)| *first);
    ordered.into_iter().map(|(_, members)| members).collect()
}

impl fmt::Display for QueryTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryTree::Leaf { relation, attrs } => {
                write!(
                    f,
                    "{relation}({})",
                    attrs.iter().cloned().collect::<Vec<_>>().join(",")
                )
            }
            QueryTree::Inner { attrs, children } => {
                write!(
                    f,
                    "[{}](",
                    attrs.iter().cloned().collect::<Vec<_>>().join(",")
                )?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::{intro_query_q, intro_query_q_prime, ConjunctiveQuery};
    use crate::fd::attr_set;

    #[test]
    fn intro_query_is_hierarchical() {
        // ckey participates in both joins, okey only in one (Section I).
        let q = intro_query_q().boolean_version();
        assert!(is_hierarchical_boolean(&q));
    }

    #[test]
    fn q_prime_is_non_hierarchical() {
        let q = intro_query_q_prime().boolean_version();
        let status = hierarchy_status(&q, &BTreeSet::new());
        assert!(!status.is_hierarchical());
        match status {
            HierarchyStatus::NonHierarchical { table, .. } => assert_eq!(table, "Ord"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn ignoring_head_attributes_can_make_queries_hierarchical() {
        // R(a,b) ⋈ S(b,c) ⋈ T(a,c): non-hierarchical, but ignoring `a`
        // (e.g. because it is a head attribute) leaves joins on b and c that
        // no longer violate the property.
        let q = ConjunctiveQuery::build(
            &[("R", &["a", "b"]), ("S", &["b", "c"]), ("T", &["a", "c"])],
            &[],
            vec![],
        )
        .unwrap();
        assert!(!is_hierarchical_boolean(&q));
        let status = hierarchy_status(&q, &attr_set(&["a"]));
        // b joins {R,S}, c joins {S,T}: they co-occur in S and neither set
        // contains the other, so the query stays non-hierarchical.
        assert!(!status.is_hierarchical());
        // Ignoring c as well removes one of the two offenders.
        assert!(hierarchy_status(&q, &attr_set(&["a", "c"])).is_hierarchical());
    }

    #[test]
    fn tree_of_intro_query_matches_fig3() {
        let q = intro_query_q().boolean_version();
        let tree = QueryTree::build(&q).unwrap();
        // Root is labelled {ckey} and has two children: the Cust leaf and an
        // inner node {ckey, okey} over Ord and Item.
        match &tree {
            QueryTree::Inner { attrs, children } => {
                assert_eq!(attrs, &attr_set(&["ckey"]));
                assert_eq!(children.len(), 2);
                let leaf_cust = children
                    .iter()
                    .find(|c| matches!(c, QueryTree::Leaf { relation, .. } if relation == "Cust"));
                assert!(leaf_cust.is_some());
                let inner = children
                    .iter()
                    .find(|c| matches!(c, QueryTree::Inner { .. }))
                    .unwrap();
                match inner {
                    QueryTree::Inner { attrs, children } => {
                        assert_eq!(attrs, &attr_set(&["ckey", "okey"]));
                        let mut rels: Vec<String> =
                            children.iter().flat_map(|c| c.relations()).collect();
                        rels.sort();
                        assert_eq!(rels, vec!["Item".to_string(), "Ord".to_string()]);
                    }
                    _ => unreachable!(),
                }
            }
            _ => panic!("expected inner root"),
        }
        assert_eq!(tree.depth(), 3);
    }

    #[test]
    fn tree_of_non_hierarchical_query_fails() {
        let q = intro_query_q_prime().boolean_version();
        assert!(matches!(
            QueryTree::build(&q),
            Err(QueryError::NotHierarchical { .. })
        ));
    }

    #[test]
    fn disconnected_query_gets_empty_root() {
        let q = ConjunctiveQuery::build(&[("R", &["a"]), ("S", &["b"])], &[], vec![]).unwrap();
        let tree = QueryTree::build(&q).unwrap();
        match &tree {
            QueryTree::Inner { attrs, children } => {
                assert!(attrs.is_empty());
                assert_eq!(children.len(), 2);
            }
            _ => panic!("expected inner root"),
        }
    }

    #[test]
    fn single_relation_query_is_a_leaf() {
        let q = ConjunctiveQuery::build(&[("R", &["a", "b"])], &[], vec![]).unwrap();
        let tree = QueryTree::build(&q).unwrap();
        assert!(matches!(tree, QueryTree::Leaf { .. }));
        assert_eq!(tree.relations(), vec!["R".to_string()]);
    }

    #[test]
    fn minimal_subtree_finds_lowest_cover() {
        let q = intro_query_q().boolean_version();
        let tree = QueryTree::build(&q).unwrap();
        // {Ord, Item} is covered by the inner {ckey, okey} node whose parent
        // label is {ckey} (Example III.4).
        let (sub, parent) = tree.minimal_subtree(&attr_set(&["Ord", "Item"])).unwrap();
        assert_eq!(parent, attr_set(&["ckey"]));
        let mut rels = sub.relations();
        rels.sort();
        assert_eq!(rels, vec!["Item".to_string(), "Ord".to_string()]);
        // {Cust, Ord} needs the whole tree.
        let (sub, parent) = tree.minimal_subtree(&attr_set(&["Cust", "Ord"])).unwrap();
        assert!(parent.is_empty());
        assert_eq!(sub.relations().len(), 3);
        // A single table is covered by its own leaf.
        let (sub, _) = tree.minimal_subtree(&attr_set(&["Item"])).unwrap();
        assert_eq!(sub.relations(), vec!["Item".to_string()]);
        // Unknown tables yield None.
        assert!(tree.minimal_subtree(&attr_set(&["Nope"])).is_none());
        assert!(tree.minimal_subtree(&BTreeSet::new()).is_none());
    }

    #[test]
    fn display_is_readable() {
        let q = intro_query_q().boolean_version();
        let tree = QueryTree::build(&q).unwrap();
        let s = tree.to_string();
        assert!(s.contains("[ckey]"));
        assert!(s.contains("Cust("));
    }

    #[test]
    fn four_level_hierarchy() {
        // Nation(nk) — Cust(nk, ck) — Ord(nk, ck, ok) — Item(nk, ck, ok, lk):
        // a deep chain like the conjunctive subquery of TPC-H query 7/18.
        let q = ConjunctiveQuery::build(
            &[
                ("Nation", &["nk", "nname"]),
                ("Cust", &["nk", "ck", "cname"]),
                ("Ord", &["nk", "ck", "ok"]),
                ("Item", &["nk", "ck", "ok", "price"]),
            ],
            &[],
            vec![],
        )
        .unwrap();
        assert!(is_hierarchical_boolean(&q));
        let tree = QueryTree::build(&q).unwrap();
        assert_eq!(tree.depth(), 4);
        assert_eq!(tree.attrs(), &attr_set(&["nk"]));
    }
}
