//! Conjunctive queries without self-joins.
//!
//! Following Section II.B of the paper, queries have the form
//! `π_A σ_φ (R1 ⋈ … ⋈ Rn)` where `A` is the projection list, `φ` is a
//! conjunction of comparisons between attributes and constants, and joins are
//! natural joins: "we assume that the join attributes have the same name in
//! the joined tables".

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use pdb_storage::Value;

use crate::error::{QueryError, QueryResult};

/// A comparison operator used in constant selections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `IN (v1, …, vk)` — set membership against the predicate's
    /// `alternatives` list. Against a single constant it degenerates to `=`.
    In,
}

impl CompareOp {
    /// Evaluates the comparison between a column value and the constant.
    ///
    /// `In` here compares against the single constant only; membership over a
    /// full alternative list goes through [`Predicate::matches`].
    pub fn eval(&self, left: &Value, right: &Value) -> bool {
        if left.is_null() || right.is_null() {
            return false;
        }
        match self {
            CompareOp::Eq | CompareOp::In => left == right,
            CompareOp::Ne => left != right,
            CompareOp::Lt => left < right,
            CompareOp::Le => left <= right,
            CompareOp::Gt => left > right,
            CompareOp::Ge => left >= right,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
            CompareOp::In => "IN",
        };
        f.write_str(s)
    }
}

/// A unary selection predicate `relation.attribute op constant`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// The relation the attribute belongs to.
    pub relation: String,
    /// The attribute name (unqualified).
    pub attribute: String,
    /// The comparison operator.
    pub op: CompareOp,
    /// The constant compared against.
    pub constant: Value,
    /// Additional constants for `In` predicates; `constant` holds the first
    /// list element and this holds the rest (empty for every other operator).
    pub alternatives: Vec<Value>,
}

impl Predicate {
    /// Creates a predicate.
    pub fn new(
        relation: impl Into<String>,
        attribute: impl Into<String>,
        op: CompareOp,
        constant: impl Into<Value>,
    ) -> Self {
        Predicate {
            relation: relation.into(),
            attribute: attribute.into(),
            op,
            constant: constant.into(),
            alternatives: Vec::new(),
        }
    }

    /// Creates an `IN (v1, …, vk)` membership predicate. NULL list elements
    /// never match (SQL semantics), and an *empty* list selects nothing: it
    /// is represented as the single member NULL, which every evaluation path
    /// (oracle, kernels, zone pruning) already treats as never-matching.
    pub fn is_in(
        relation: impl Into<String>,
        attribute: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<Value>>,
    ) -> Self {
        let mut list: Vec<Value> = values.into_iter().map(Into::into).collect();
        let constant = if list.is_empty() {
            Value::Null
        } else {
            list.remove(0)
        };
        Predicate {
            relation: relation.into(),
            attribute: attribute.into(),
            op: CompareOp::In,
            constant,
            alternatives: list,
        }
    }

    /// All constants the predicate compares against: `constant` followed by
    /// `alternatives` (length 1 for every operator except `In`).
    pub fn constants(&self) -> impl Iterator<Item = &Value> {
        std::iter::once(&self.constant).chain(self.alternatives.iter())
    }

    /// The single evaluation oracle: whether column value `v` satisfies this
    /// predicate. NULL column values never match, and for `In` NULL list
    /// elements never match either.
    pub fn matches(&self, v: &Value) -> bool {
        match self.op {
            CompareOp::In => !v.is_null() && self.constants().any(|c| !c.is_null() && v == c),
            op => op.eval(v, &self.constant),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.op == CompareOp::In {
            write!(
                f,
                "{}.{} IN ({}",
                self.relation, self.attribute, self.constant
            )?;
            for alt in &self.alternatives {
                write!(f, ", {alt}")?;
            }
            return write!(f, ")");
        }
        write!(
            f,
            "{}.{} {} {}",
            self.relation, self.attribute, self.op, self.constant
        )
    }
}

/// A relation atom `R(a1, …, ak)`: a relation name with the attributes the
/// query uses from it. Attribute names are unqualified; two atoms sharing an
/// attribute name are joined on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationAtom {
    /// Relation (table) name.
    pub name: String,
    /// Attributes of the relation, as used by this query.
    pub attributes: Vec<String>,
}

impl RelationAtom {
    /// Creates an atom.
    pub fn new(name: impl Into<String>, attributes: &[&str]) -> Self {
        RelationAtom {
            name: name.into(),
            attributes: attributes.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The attribute set of this atom.
    pub fn attribute_set(&self) -> BTreeSet<String> {
        self.attributes.iter().cloned().collect()
    }

    /// Whether the atom mentions `attr`.
    pub fn has_attribute(&self, attr: &str) -> bool {
        self.attributes.iter().any(|a| a == attr)
    }
}

impl fmt::Display for RelationAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.attributes.join(", "))
    }
}

/// A conjunctive query without self-joins.
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctiveQuery {
    /// Relation atoms `R1 … Rn`. Each relation name occurs at most once.
    pub relations: Vec<RelationAtom>,
    /// Projection (head) attributes `A`. Empty for Boolean queries.
    pub head: Vec<String>,
    /// Conjunction of constant selection predicates `φ`.
    pub predicates: Vec<Predicate>,
}

impl ConjunctiveQuery {
    /// Creates and validates a query.
    ///
    /// # Errors
    /// Rejects self-joins, head attributes absent from every atom, predicates
    /// on unknown relations or attributes, and empty queries.
    pub fn new(
        relations: Vec<RelationAtom>,
        head: Vec<String>,
        predicates: Vec<Predicate>,
    ) -> QueryResult<Self> {
        if relations.is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        for (i, r) in relations.iter().enumerate() {
            if relations[..i].iter().any(|s| s.name == r.name) {
                return Err(QueryError::SelfJoin(r.name.clone()));
            }
        }
        for h in &head {
            if !relations.iter().any(|r| r.has_attribute(h)) {
                return Err(QueryError::UnknownHeadAttribute(h.clone()));
            }
        }
        for p in &predicates {
            let atom = relations
                .iter()
                .find(|r| r.name == p.relation)
                .ok_or_else(|| QueryError::UnknownRelation(p.relation.clone()))?;
            if !atom.has_attribute(&p.attribute) {
                return Err(QueryError::UnknownPredicateAttribute {
                    relation: p.relation.clone(),
                    attribute: p.attribute.clone(),
                });
            }
        }
        Ok(ConjunctiveQuery {
            relations,
            head,
            predicates,
        })
    }

    /// Builder-style constructor used heavily in tests and the TPC-H query
    /// catalogue: atoms as `(name, attributes)` pairs.
    pub fn build(
        atoms: &[(&str, &[&str])],
        head: &[&str],
        predicates: Vec<Predicate>,
    ) -> QueryResult<Self> {
        ConjunctiveQuery::new(
            atoms
                .iter()
                .map(|(n, attrs)| RelationAtom::new(*n, attrs))
                .collect(),
            head.iter().map(|s| s.to_string()).collect(),
            predicates,
        )
    }

    /// Whether the query is Boolean (empty head).
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// The Boolean version of this query (same body, empty head).
    pub fn boolean_version(&self) -> ConjunctiveQuery {
        ConjunctiveQuery {
            relations: self.relations.clone(),
            head: Vec::new(),
            predicates: self.predicates.clone(),
        }
    }

    /// The atom for relation `name`, if present.
    pub fn relation(&self, name: &str) -> Option<&RelationAtom> {
        self.relations.iter().find(|r| r.name == name)
    }

    /// Names of all relations, in query order.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.iter().map(|r| r.name.as_str()).collect()
    }

    /// For every attribute, the set of relations that mention it.
    pub fn attribute_occurrences(&self) -> BTreeMap<String, BTreeSet<String>> {
        let mut map: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for r in &self.relations {
            for a in &r.attributes {
                map.entry(a.clone()).or_default().insert(r.name.clone());
            }
        }
        map
    }

    /// The join attributes: attributes occurring in at least two relations.
    pub fn join_attributes(&self) -> BTreeSet<String> {
        self.attribute_occurrences()
            .into_iter()
            .filter(|(_, rels)| rels.len() >= 2)
            .map(|(a, _)| a)
            .collect()
    }

    /// The head attribute set.
    pub fn head_set(&self) -> BTreeSet<String> {
        self.head.iter().cloned().collect()
    }

    /// All attributes mentioned anywhere in the query.
    pub fn all_attributes(&self) -> BTreeSet<String> {
        self.relations
            .iter()
            .flat_map(|r| r.attributes.iter().cloned())
            .collect()
    }

    /// The predicates attached to relation `name`.
    pub fn predicates_for(&self, name: &str) -> Vec<&Predicate> {
        self.predicates
            .iter()
            .filter(|p| p.relation == name)
            .collect()
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "π[{}] σ[", self.head.join(", "))?;
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "] (")?;
        for (i, r) in self.relations.iter().enumerate() {
            if i > 0 {
                write!(f, " ⋈ ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

/// The guiding query `Q` of the paper's Introduction:
/// `π_odate σ_{cname='Joe', discount>0} (Cust ⋈_ckey Ord ⋈_{okey,ckey} Item)`,
/// with `Item` carrying a `ckey` column so the query is hierarchical.
///
/// Exposed here because nearly every crate in the workspace uses it as a
/// worked example and test fixture.
pub fn intro_query_q() -> ConjunctiveQuery {
    ConjunctiveQuery::build(
        &[
            ("Cust", &["ckey", "cname"]),
            ("Ord", &["okey", "ckey", "odate"]),
            ("Item", &["okey", "ckey", "discount"]),
        ],
        &["odate"],
        vec![
            Predicate::new("Cust", "cname", CompareOp::Eq, "Joe"),
            Predicate::new("Item", "discount", CompareOp::Gt, 0.0),
        ],
    )
    .expect("intro query is well-formed")
}

/// The paper's query `Q'`: like [`intro_query_q`] but `Item` has no `ckey`
/// attribute, which makes the query non-hierarchical (the prototypical hard
/// query) unless the functional dependency `okey → ckey` is exploited.
pub fn intro_query_q_prime() -> ConjunctiveQuery {
    ConjunctiveQuery::build(
        &[
            ("Cust", &["ckey", "cname"]),
            ("Ord", &["okey", "ckey", "odate"]),
            ("Item", &["okey", "discount"]),
        ],
        &["odate"],
        vec![
            Predicate::new("Cust", "cname", CompareOp::Eq, "Joe"),
            Predicate::new("Item", "discount", CompareOp::Gt, 0.0),
        ],
    )
    .expect("intro query Q' is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_op_eval() {
        assert!(CompareOp::Eq.eval(&Value::Int(1), &Value::Int(1)));
        assert!(CompareOp::Lt.eval(&Value::Int(1), &Value::Int(2)));
        assert!(CompareOp::Ge.eval(&Value::Float(2.0), &Value::Int(2)));
        assert!(CompareOp::Ne.eval(&Value::str("a"), &Value::str("b")));
        assert!(!CompareOp::Eq.eval(&Value::Null, &Value::Int(1)));
        assert!(!CompareOp::Gt.eval(&Value::Int(3), &Value::Null));
    }

    #[test]
    fn in_predicate_matches_membership() {
        let p = Predicate::is_in("R", "a", [1i64, 3, 5]);
        assert_eq!(p.op, CompareOp::In);
        assert!(p.matches(&Value::Int(3)));
        assert!(p.matches(&Value::Int(5)));
        assert!(!p.matches(&Value::Int(2)));
        assert!(!p.matches(&Value::Null));
        // Cross-variant numeric equality holds for membership too.
        assert!(p.matches(&Value::Float(1.0)));
        // NULL list elements never match anything.
        let p = Predicate::is_in("R", "a", [Value::Null, Value::Int(7)]);
        assert!(p.matches(&Value::Int(7)));
        assert!(!p.matches(&Value::Null));
        // Display renders the full list.
        let p = Predicate::is_in("R", "a", ["x", "y"]);
        assert_eq!(p.to_string(), "R.a IN (x, y)");
    }

    #[test]
    fn empty_in_list_selects_nothing() {
        // SQL's `a IN ()` is a contradiction, not an error: it is encoded as
        // the single member NULL, which no value ever equals.
        let p = Predicate::is_in("R", "a", Vec::<Value>::new());
        assert_eq!(p.op, CompareOp::In);
        assert_eq!(p.constant, Value::Null);
        assert!(p.alternatives.is_empty());
        for v in [
            Value::Int(0),
            Value::str(""),
            Value::Null,
            Value::Bool(false),
        ] {
            assert!(!p.matches(&v), "{v} must not match IN ()");
        }
    }

    #[test]
    fn all_null_in_list_selects_nothing() {
        let p = Predicate::is_in("R", "a", [Value::Null, Value::Null]);
        for v in [Value::Int(1), Value::Float(f64::NAN), Value::Null] {
            assert!(!p.matches(&v), "{v} must not match IN (NULL, NULL)");
        }
    }

    #[test]
    fn matches_agrees_with_eval_for_scalar_ops() {
        let p = Predicate::new("R", "a", CompareOp::Le, 4i64);
        for v in [Value::Int(3), Value::Int(4), Value::Int(5), Value::Null] {
            assert_eq!(p.matches(&v), p.op.eval(&v, &p.constant));
        }
    }

    #[test]
    fn in_query_validates_like_any_predicate() {
        let q = ConjunctiveQuery::build(
            &[("R", &["a"])],
            &["a"],
            vec![Predicate::is_in("R", "a", [1i64, 2])],
        )
        .unwrap();
        assert_eq!(q.predicates_for("R").len(), 1);
        let err = ConjunctiveQuery::build(
            &[("R", &["a"])],
            &[],
            vec![Predicate::is_in("S", "a", [1i64])],
        );
        assert!(matches!(err, Err(QueryError::UnknownRelation(_))));
    }

    #[test]
    fn self_join_rejected() {
        let err = ConjunctiveQuery::build(&[("R", &["a"]), ("R", &["b"])], &[], vec![]);
        assert!(matches!(err, Err(QueryError::SelfJoin(_))));
    }

    #[test]
    fn unknown_head_attribute_rejected() {
        let err = ConjunctiveQuery::build(&[("R", &["a"])], &["b"], vec![]);
        assert!(matches!(err, Err(QueryError::UnknownHeadAttribute(_))));
    }

    #[test]
    fn predicate_validation() {
        let err = ConjunctiveQuery::build(
            &[("R", &["a"])],
            &[],
            vec![Predicate::new("S", "a", CompareOp::Eq, 1i64)],
        );
        assert!(matches!(err, Err(QueryError::UnknownRelation(_))));
        let err = ConjunctiveQuery::build(
            &[("R", &["a"])],
            &[],
            vec![Predicate::new("R", "b", CompareOp::Eq, 1i64)],
        );
        assert!(matches!(
            err,
            Err(QueryError::UnknownPredicateAttribute { .. })
        ));
    }

    #[test]
    fn empty_query_rejected() {
        assert!(matches!(
            ConjunctiveQuery::build(&[], &[], vec![]),
            Err(QueryError::EmptyQuery)
        ));
    }

    #[test]
    fn join_attributes_of_intro_query() {
        let q = intro_query_q();
        let joins = q.join_attributes();
        assert!(joins.contains("ckey"));
        assert!(joins.contains("okey"));
        assert!(!joins.contains("odate"));
        assert!(!joins.contains("cname"));
    }

    #[test]
    fn q_prime_join_attributes() {
        let q = intro_query_q_prime();
        let joins = q.join_attributes();
        assert_eq!(joins.len(), 2);
        // ckey now only joins Cust and Ord; okey joins Ord and Item.
        let occ = q.attribute_occurrences();
        assert_eq!(occ["ckey"].len(), 2);
        assert_eq!(occ["okey"].len(), 2);
    }

    #[test]
    fn boolean_version_drops_head() {
        let q = intro_query_q();
        assert!(!q.is_boolean());
        let b = q.boolean_version();
        assert!(b.is_boolean());
        assert_eq!(b.relations, q.relations);
    }

    #[test]
    fn predicates_for_filters_by_relation() {
        let q = intro_query_q();
        assert_eq!(q.predicates_for("Cust").len(), 1);
        assert_eq!(q.predicates_for("Item").len(), 1);
        assert_eq!(q.predicates_for("Ord").len(), 0);
    }

    #[test]
    fn display_is_readable() {
        let q = intro_query_q();
        let s = q.to_string();
        assert!(s.contains("π[odate]"));
        assert!(s.contains("Cust(ckey, cname)"));
        assert!(s.contains("Cust.cname = Joe"));
    }

    #[test]
    fn accessors() {
        let q = intro_query_q();
        assert_eq!(q.relation_names(), vec!["Cust", "Ord", "Item"]);
        assert!(q.relation("Ord").is_some());
        assert!(q.relation("Nope").is_none());
        assert_eq!(q.all_attributes().len(), 5);
        assert_eq!(q.head_set().len(), 1);
    }
}
