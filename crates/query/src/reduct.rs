//! FD-reducts: rewriting queries under functional dependencies (Section IV).
//!
//! Given a set of dependencies `Σ` and a conjunctive query
//! `Q = π_{A0} σ_φ (R1(A1) ⋈ … ⋈ Rn(An))`, the *FD-reduct* of `Q` under `Σ`
//! (Definition IV.1) is the Boolean query
//!
//! ```text
//! Q_fd = π_∅ σ_φ ( R1(CLOSURE_Σ(A1) − CLOSURE_Σ(A0)) ⋈ … ⋈ Rn(CLOSURE_Σ(An) − CLOSURE_Σ(A0)) )
//! ```
//!
//! FD-reducts matter twice over: non-hierarchical queries can admit
//! hierarchical FD-reducts, and non-Boolean queries are accommodated by using
//! the signature of the (Boolean) reduct to factor the lineage of each bag of
//! duplicate answer tuples. By Proposition IV.5, computing the full closure
//! never misses a hierarchical rewriting reachable by any chase sequence.

use std::collections::BTreeSet;
use std::fmt;

use crate::cq::{ConjunctiveQuery, RelationAtom};
use crate::error::QueryResult;
use crate::fd::FdSet;
use crate::hierarchy::{hierarchy_status, HierarchyStatus, QueryTree};
use crate::signature::{signature_of_tree, Signature};

/// The FD-reduct of a query under a set of functional dependencies.
#[derive(Debug, Clone, PartialEq)]
pub struct FdReduct {
    /// The original query the reduct was derived from.
    pub original: ConjunctiveQuery,
    /// The Boolean reduct query with closure-extended, head-reduced atoms.
    pub reduct: ConjunctiveQuery,
    /// The dependencies used.
    pub fds: FdSet,
}

impl FdReduct {
    /// Computes the FD-reduct of `query` under `fds` (Definition IV.1).
    ///
    /// With an empty dependency set this still removes the head attributes
    /// from every atom, which is the "fixing the duplicate bag's values"
    /// refinement discussed after Example IV.3.
    pub fn compute(query: &ConjunctiveQuery, fds: &FdSet) -> FdReduct {
        let head_closure = fds.closure(&query.head_set());
        let relations: Vec<RelationAtom> = query
            .relations
            .iter()
            .map(|atom| {
                let closure = fds.closure(&atom.attribute_set());
                let attrs: Vec<String> = closure
                    .into_iter()
                    .filter(|a| !head_closure.contains(a))
                    .collect();
                RelationAtom {
                    name: atom.name.clone(),
                    attributes: attrs,
                }
            })
            .collect();
        // The reduct keeps the original predicates: they are unary and only
        // restrict which tuples participate, not the lineage structure.
        let reduct = ConjunctiveQuery {
            relations,
            head: Vec::new(),
            predicates: query.predicates.clone(),
        };
        FdReduct {
            original: query.clone(),
            reduct,
            fds: fds.clone(),
        }
    }

    /// Hierarchy status of the reduct.
    pub fn hierarchy(&self) -> HierarchyStatus {
        hierarchy_status(&self.reduct, &BTreeSet::new())
    }

    /// Whether the reduct is hierarchical, i.e. whether the original query is
    /// tractable by the paper's operator under the given dependencies.
    pub fn is_hierarchical(&self) -> bool {
        self.hierarchy().is_hierarchical()
    }

    /// The tree representation of the reduct.
    ///
    /// # Errors
    /// Fails when the reduct is not hierarchical.
    pub fn tree(&self) -> QueryResult<QueryTree> {
        QueryTree::build(&self.reduct)
    }

    /// The signature of the reduct, refined by the dependencies. This is the
    /// signature the confidence-computation operator uses to process the
    /// *original* query's answer (Section IV: "If the FD-reduct is
    /// hierarchical, then the operator … uses its signature to efficiently
    /// and correctly evaluate the original query on the original database").
    ///
    /// # Errors
    /// Fails when the reduct is not hierarchical.
    pub fn signature(&self) -> QueryResult<Signature> {
        Ok(signature_of_tree(&self.tree()?, &self.fds))
    }
}

impl fmt::Display for FdReduct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FD-reduct[{}] of {}", self.reduct, self.original)
    }
}

/// Convenience function: the signature used to process `query` under `fds`,
/// i.e. the signature of its FD-reduct.
///
/// # Errors
/// Fails when the FD-reduct is not hierarchical.
pub fn query_signature(query: &ConjunctiveQuery, fds: &FdSet) -> QueryResult<Signature> {
    FdReduct::compute(query, fds).signature()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::{intro_query_q, intro_query_q_prime, ConjunctiveQuery};
    use crate::fd::{attr_set, FunctionalDependency};

    fn tpch_fds() -> FdSet {
        FdSet::new(vec![
            FunctionalDependency::on("Ord", &["okey"], &["ckey", "odate"]),
            FunctionalDependency::on("Cust", &["ckey"], &["cname"]),
        ])
    }

    #[test]
    fn example_iv3_non_hierarchical_query_gets_hierarchical_reduct() {
        // π_cname(Item(okey, discount) ⋈ Ord(okey, ckey, odate) ⋈ Cust(ckey, cname))
        // is non-Boolean and non-hierarchical; under Ord: okey → ckey odate the
        // FD-reduct is Boolean and hierarchical.
        let q = ConjunctiveQuery::build(
            &[
                ("Item", &["okey", "discount"]),
                ("Ord", &["okey", "ckey", "odate"]),
                ("Cust", &["ckey", "cname"]),
            ],
            &["cname"],
            vec![],
        )
        .unwrap();
        let no_fd = FdReduct::compute(&q, &FdSet::empty());
        assert!(!no_fd.is_hierarchical());

        let fds = FdSet::new(vec![FunctionalDependency::on(
            "Ord",
            &["okey"],
            &["ckey", "odate"],
        )]);
        let reduct = FdReduct::compute(&q, &fds);
        assert!(reduct.is_hierarchical());
        // Item's attributes are extended by the closure of okey.
        let item = reduct.reduct.relation("Item").unwrap();
        assert_eq!(
            item.attribute_set(),
            attr_set(&["okey", "discount", "ckey", "odate"])
        );
        // Cust keeps ckey only (cname is the head).
        let cust = reduct.reduct.relation("Cust").unwrap();
        assert_eq!(cust.attribute_set(), attr_set(&["ckey"]));
        // Signature per Example IV.3: Cust(Ord Item*)* — possibly up to the
        // outermost grouping star, which is absent because ckey is functionally
        // fixed within a duplicate bag only when it is a key; here the whole
        // signature is a single outer group per cname value.
        let sig = reduct.signature().unwrap();
        assert_eq!(sig.tables().len(), 3);
        assert!(sig.is_one_scan());
    }

    #[test]
    fn example_iv4_reduct_signature_needs_one_scan() {
        // π_okey(Item(ckey, okey, discount) ⋈ Ord(okey, ckey, odate) ⋈ Cust(ckey, cname))
        // with Ord: okey → ckey odate and Cust: ckey → cname reduces to
        // π_∅(Item(discount) ⋈ Ord() ⋈ Cust()) with signature Cust Ord Item*.
        let q = ConjunctiveQuery::build(
            &[
                ("Item", &["ckey", "okey", "discount"]),
                ("Ord", &["okey", "ckey", "odate"]),
                ("Cust", &["ckey", "cname"]),
            ],
            &["okey"],
            vec![],
        )
        .unwrap();
        let reduct = FdReduct::compute(&q, &tpch_fds());
        assert!(reduct.is_hierarchical());
        assert!(reduct.reduct.relation("Ord").unwrap().attributes.is_empty());
        assert!(reduct
            .reduct
            .relation("Cust")
            .unwrap()
            .attributes
            .is_empty());
        assert_eq!(
            reduct.reduct.relation("Item").unwrap().attribute_set(),
            attr_set(&["discount"])
        );
        let sig = reduct.signature().unwrap();
        assert!(sig.is_one_scan());
        assert_eq!(sig.scan_count(), 1);
        // Exactly one table (Item) remains starred.
        assert_eq!(sig.star_count(), 1);
    }

    #[test]
    fn q_prime_becomes_hierarchical_under_okey_fd() {
        // Section I: Q' is the prototypical hard query, but under
        // okey → ckey it has the signature (Cust(Ord Item*)*)*.
        let q = intro_query_q_prime();
        assert!(!FdReduct::compute(&q, &FdSet::empty()).is_hierarchical());
        let reduct = FdReduct::compute(&q, &tpch_fds());
        assert!(reduct.is_hierarchical());
        let sig = reduct.signature().unwrap();
        assert_eq!(sig.to_string(), "(Cust (Ord Item*)*)*");
        assert_eq!(sig.scan_count(), 1);
    }

    #[test]
    fn intro_query_reduct_without_fds_is_hierarchical() {
        // Q itself is hierarchical even without dependencies; dropping the
        // head attribute odate from Ord means Ord contributes at most one
        // tuple per (okey, ckey) pair within each duplicate bag.
        let q = intro_query_q();
        let reduct = FdReduct::compute(&q, &FdSet::empty());
        assert!(reduct.is_hierarchical());
        let sig = reduct.signature().unwrap();
        assert_eq!(sig.to_string(), "(Cust* (Ord Item*)*)*");
        assert_eq!(sig.scan_count(), 2);
    }

    #[test]
    fn intro_query_reduct_with_fds_has_one_scan_signature() {
        let q = intro_query_q();
        let reduct = FdReduct::compute(&q, &tpch_fds());
        let sig = reduct.signature().unwrap();
        assert_eq!(sig.to_string(), "(Cust (Ord Item*)*)*");
        assert_eq!(sig.scan_count(), 1);
    }

    #[test]
    fn query_signature_helper_errors_on_hard_queries() {
        assert!(query_signature(&intro_query_q_prime(), &FdSet::empty()).is_err());
        assert!(query_signature(&intro_query_q_prime(), &tpch_fds()).is_ok());
    }

    #[test]
    fn boolean_query_reduct_keeps_all_attributes() {
        let q = intro_query_q().boolean_version();
        let reduct = FdReduct::compute(&q, &FdSet::empty());
        assert_eq!(
            reduct.reduct.relation("Ord").unwrap().attribute_set(),
            attr_set(&["okey", "ckey", "odate"])
        );
        assert_eq!(
            reduct.signature().unwrap().to_string(),
            "(Cust* (Ord* Item*)*)*"
        );
    }

    #[test]
    fn display_mentions_both_queries() {
        let q = intro_query_q();
        let reduct = FdReduct::compute(&q, &FdSet::empty());
        let s = reduct.to_string();
        assert!(s.contains("FD-reduct"));
        assert!(s.contains("Cust"));
    }
}
