//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! a minimal wall-clock harness that is API-compatible with the subset of
//! Criterion the benches use: `criterion_group!` / `criterion_main!`,
//! benchmark groups, `sample_size` / `warm_up_time` / `measurement_time`,
//! and `Bencher::iter`. Statistics are simple (mean / min / max over the
//! collected samples) and printed to stdout; there is no HTML report, no
//! outlier analysis and no saved baselines.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under Criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing statistics of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Sampled {
    /// Mean time per iteration.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Number of samples.
    pub samples: usize,
}

/// Runs closures and records their wall-clock time.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Measures `routine`: a short warm-up, then up to `sample_size` samples
    /// bounded by the measurement time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_up_deadline = Instant::now() + self.warm_up_time;
        loop {
            black_box(routine());
            if Instant::now() >= warm_up_deadline {
                break;
            }
        }
        let deadline = Instant::now() + self.measurement_time;
        for i in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            // Always collect at least two samples so min/max are meaningful.
            if i >= 1 && Instant::now() >= deadline {
                break;
            }
        }
    }

    fn stats(&self) -> Option<Sampled> {
        if self.samples.is_empty() {
            return None;
        }
        let total: Duration = self.samples.iter().sum();
        Some(Sampled {
            mean: total / self.samples.len() as u32,
            min: *self.samples.iter().min().expect("non-empty"),
            max: *self.samples.iter().max().expect("non-empty"),
            samples: self.samples.len(),
        })
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Time budget for sampling.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Measures one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        match bencher.stats() {
            Some(s) => {
                println!(
                    "{}/{:<40} mean {:>12.6?}  min {:>12.6?}  max {:>12.6?}  ({} samples)",
                    self.name, id, s.mean, s.min, s.max, s.samples
                );
                self.criterion
                    .results
                    .push((format!("{}/{}", self.name, id), s));
            }
            None => println!("{}/{:<40} collected no samples", self.name, id),
        }
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// All `(benchmark id, stats)` pairs measured so far.
    pub results: Vec<(String, Sampled)>,
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("# group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Measures a stand-alone benchmark with the default settings.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: String = id.into();
        self.benchmark_group(id.clone()).bench_function(id, f);
        self
    }

    /// Final configuration hook (kept for `criterion_main!` compatibility).
    pub fn final_summary(&self) {
        println!("# {} benchmark(s) measured", self.results.len());
    }
}

/// Declares a group of benchmark functions, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_collects_samples() {
        let mut c = Criterion::default();
        benches(&mut c);
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].1.samples >= 2);
    }
}
