//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, API-compatible subset of `rand` 0.8: [`SeedableRng`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and [`rngs::SmallRng`] backed by
//! xoshiro256** seeded through SplitMix64. The generators are deterministic
//! for a given seed, which is all the TPC-H data generator and the test
//! suites rely on; the streams differ from upstream `rand`, so datasets are
//! reproducible per-workspace, not bit-identical to ones generated with the
//! real crate.

/// Types that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range using `draw`, a source of
    /// uniform 64-bit words.
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, draw: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (draw() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, draw: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (draw() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (draw() >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // 53-bit resolution over the closed interval.
        let unit = (draw() >> 11) as f64 / ((1u64 << 53) - 1) as f64; // [0, 1]
        start + unit * (end - start)
    }
}

/// The subset of the `Rng` trait the workspace uses.
pub trait Rng {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }

    /// Bernoulli sample with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: Rng + ?Sized> Rng for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = seed;
            let mut next_sm = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                state: [next_sm(), next_sm(), next_sm(), next_sm()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17i64);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(1..=7usize);
            assert!((1..=7).contains(&j));
            let f = rng.gen_range(0.05..=1.0f64);
            assert!((0.05..=1.0).contains(&f));
            let g = rng.gen_range(-999.0..10_000.0f64);
            assert!((-999.0..10_000.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }
}
