//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small, deterministic property-testing harness that is API-compatible
//! with the subset of `proptest` the test suites use: range strategies,
//! tuple strategies, `collection::vec` / `collection::btree_set`,
//! `bool::ANY`, `Strategy::prop_map`, the `proptest!` macro, and the
//! `prop_assert*` macros. There is **no shrinking**: a failing case is
//! reported with its generated inputs and the deterministic seed, which is
//! enough to reproduce it (every run generates the same cases).

use std::fmt;

pub use rand::rngs::SmallRng as TestRng;
use rand::SeedableRng;

/// A failed test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Strategies: recipes for generating values.
pub mod strategy {
    use super::TestRng;

    /// A value generator. Unlike real proptest there is no value tree and no
    /// shrinking; a strategy simply draws a value from the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub use strategy::Strategy;

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Generates `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Size specifications accepted by [`vec`] and [`btree_set`]: a fixed
    /// `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Draws a size.
        fn draw_size(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_size(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn draw_size(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn draw_size(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Generates a `Vec` whose elements come from `element` and whose length
    /// comes from `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw_size(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates a `BTreeSet`; because duplicates collapse, the resulting set
    /// may be smaller than the drawn size (real proptest retries — this shim
    /// accepts the smaller set, which is fine for the workspace's tests as
    /// long as at least one element survives for non-empty size ranges).
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: IntoSizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    /// The strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: IntoSizeRange,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.draw_size(rng);
            let mut out = BTreeSet::new();
            // A few extra draws compensate for collisions without risking an
            // endless loop on tiny domains.
            for _ in 0..(4 * n + 8) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            if n > 0 && out.is_empty() {
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// Everything a test module usually imports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, TestCaseError, TestRng,
    };
}

/// Deterministic per-property seed: cases are reproducible run over run.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `body` for `cases` deterministic cases. Used by the [`proptest!`]
/// macro; not part of the public proptest API.
pub fn run_cases(
    name: &str,
    cases: u32,
    mut body: impl FnMut(&mut TestRng, u32) -> Result<(), TestCaseError>,
) {
    let mut rng = <TestRng as SeedableRng>::seed_from_u64(seed_for(name));
    for case in 0..cases {
        if let Err(e) = body(&mut rng, case) {
            panic!("property '{name}' failed at case {case}/{cases}: {e}");
        }
    }
}

/// Declares property tests. Matches the real macro's surface for the forms
/// used in this workspace; there is no shrinking.
#[macro_export]
macro_rules! proptest {
    // With an explicit config.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!({ $cfg } $($rest)*);
    };
    // Default config.
    ($($rest:tt)*) => {
        $crate::__proptest_fns!({ $crate::ProptestConfig::default() } $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; do not use directly.
#[macro_export]
macro_rules! __proptest_fns {
    ({ $cfg:expr } $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), config.cases, |rng, _case| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)*
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    result
                });
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})", format!($($fmt)*), l, r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = <TestRng as rand::SeedableRng>::seed_from_u64(1);
        for _ in 0..100 {
            let v = crate::collection::vec((1i64..=3, 0.1f64..0.9), 1..5).generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 5);
            for (i, f) in v {
                assert!((1..=3).contains(&i));
                assert!((0.1..0.9).contains(&f));
            }
            let s = crate::collection::btree_set(0u64..6, 1..4).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 4);
            let mapped = (1u32..=9)
                .prop_map(|i| f64::from(i) / 10.0)
                .generate(&mut rng);
            assert!((0.1..=0.9).contains(&mapped));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_arguments(x in 0i64..10, flag in crate::bool::ANY) {
            prop_assert!((0..10).contains(&x));
            let _ = flag;
            prop_assert_eq!(x, x, "x must equal itself ({})", x);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(v in crate::collection::vec(0i64..5, 3)) {
            prop_assert_eq!(v.len(), 3);
        }
    }
}
