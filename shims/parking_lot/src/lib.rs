//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning guard
//! API (`lock()` / `read()` / `write()` return guards directly). Poisoning
//! is treated as a bug: a panic while holding a lock propagates as a panic
//! on the next acquisition.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A reader-writer lock with `parking_lot`'s panicking-on-poison semantics.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("lock poisoned")
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("lock poisoned")
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("lock poisoned")
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("lock poisoned")
    }
}

/// A mutual-exclusion lock with `parking_lot`'s panicking-on-poison
/// semantics.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("lock poisoned")
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("lock poisoned")
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_reads_and_writes() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
