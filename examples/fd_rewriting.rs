//! Functional dependencies, FD-reducts and signature refinement (Section IV).
//!
//! Shows how the prototypical hard query Q' becomes tractable under the
//! functional dependency `okey → ckey`, and how key constraints shrink the
//! number of scans the confidence operator needs (Fig. 13's effect).
//!
//! Run with: `cargo run --example fd_rewriting`

use pdb_exec::fixtures;
use pdb_query::cq::{intro_query_q, intro_query_q_prime};
use pdb_query::reduct::FdReduct;
use pdb_query::FdSet;
use sprout::{PlanKind, SproutDb};

fn main() {
    let q = intro_query_q();
    let q_prime = intro_query_q_prime();

    println!("Q  = {q}");
    println!("Q' = {q_prime}   (Item has no ckey attribute)");
    println!();

    // Without dependencies: Q is hierarchical, Q' is the prototypical hard query.
    let no_fds = FdSet::empty();
    println!("without functional dependencies:");
    println!(
        "  Q  -> hierarchical reduct: {}",
        FdReduct::compute(&q, &no_fds).is_hierarchical()
    );
    println!(
        "  Q' -> hierarchical reduct: {}  (#P-hard)",
        FdReduct::compute(&q_prime, &no_fds).is_hierarchical()
    );
    let sig = FdReduct::compute(&q, &no_fds)
        .signature()
        .expect("Q is tractable");
    println!("  signature of Q: {sig}   scans: {}", sig.scan_count());
    println!();

    // With the TPC-H keys (okey key of Ord, ckey key of Cust).
    let db = SproutDb::from_catalog(fixtures::fig1_catalog_with_keys());
    let fds = FdSet::from_catalog_decls(&db.catalog().fds());
    println!("with the TPC-H key constraints {fds}:");
    for (name, query) in [("Q", &q), ("Q'", &q_prime)] {
        let reduct = FdReduct::compute(query, &fds);
        println!(
            "  {name} -> hierarchical reduct: {}",
            reduct.is_hierarchical()
        );
        if reduct.is_hierarchical() {
            let sig = reduct
                .signature()
                .expect("hierarchical reduct has a signature");
            println!("     signature: {sig}   scans: {}", sig.scan_count());
        }
    }
    println!();

    // Both queries now compute the same answer, exactly as Section I argues.
    let conf_q = db.query(&q, PlanKind::Lazy).expect("Q runs");
    let conf_qp = db.query(&q_prime, PlanKind::Lazy).expect("Q' runs");
    println!(
        "confidence of the answer tuple under Q : {:.6}",
        conf_q.confidences[0].1
    );
    println!(
        "confidence of the answer tuple under Q': {:.6}",
        conf_qp.confidences[0].1
    );
    assert!((conf_q.confidences[0].1 - conf_qp.confidences[0].1).abs() < 1e-12);
    println!("Q and Q' agree under the FD, as the paper states ✓");
}
