//! Lazy vs. eager vs. MystiQ plans on probabilistic TPC-H data.
//!
//! Generates a small probabilistic TPC-H database, runs a few of the Fig. 9
//! queries under the three plan families and prints their wall-clock times —
//! a miniature of the paper's first experiment.
//!
//! Run with: `cargo run --release --example tpch_lazy_vs_eager`

use sprout::{PlanKind, SproutDb};

use pdb_tpch::{probabilistic_catalog, tpch_query, TpchData, TpchScale};

fn main() {
    let scale = TpchScale::new(0.002);
    println!(
        "generating probabilistic TPC-H data (scale factor {}) ...",
        scale.scale_factor
    );
    let data = TpchData::generate(scale);
    let catalog = probabilistic_catalog(&data, 1).expect("catalog builds");
    println!("total tuples: {}", catalog.total_tuples());
    let db = SproutDb::from_catalog(catalog);

    println!(
        "\n{:<6} {:>12} {:>12} {:>12}   {:>9} {:>9}",
        "query", "lazy", "eager", "mystiq", "#answers", "#distinct"
    );
    for id in ["3", "18", "B17", "10"] {
        let entry = tpch_query(id).expect("known query id");
        let query = entry.query.expect("figure queries are conjunctive");
        let lazy = db.query(&query, PlanKind::Lazy).expect("lazy plan runs");
        let eager = db.query(&query, PlanKind::Eager).expect("eager plan runs");
        let mystiq = db
            .query(&query, PlanKind::Mystiq)
            .expect("mystiq plan runs");
        println!(
            "{:<6} {:>12?} {:>12?} {:>12?}   {:>9} {:>9}",
            id,
            lazy.total_time(),
            eager.total_time(),
            mystiq.total_time(),
            lazy.answer_tuples.unwrap_or(0),
            lazy.distinct_tuples
        );
        // All plans agree on the confidences.
        for ((t1, p1), (t2, p2)) in lazy.confidences.iter().zip(eager.confidences.iter()) {
            assert_eq!(t1, t2);
            assert!((p1 - p2).abs() < 1e-6);
        }
    }
    println!("\nall plan families agree on every confidence ✓");
}
