//! Quickstart: the paper's guiding example (Fig. 1, Example V.1).
//!
//! Builds the toy `Cust`/`Ord`/`Item` database, asks for the dates of
//! discounted orders shipped to customer 'Joe', and prints the distinct
//! answer tuples with their exact confidences under several plans.
//!
//! Run with: `cargo run --example quickstart`

use sprout::{PlanKind, SproutDb};

use pdb_exec::fixtures;
use pdb_query::cq::intro_query_q;

fn main() {
    // The Fig. 1 database with the TPC-H-style keys (okey key of Ord, ckey
    // key of Cust) declared, which refine the query signature.
    let db = SproutDb::from_catalog(fixtures::fig1_catalog_with_keys());
    let query = intro_query_q();

    println!("query:     {query}");
    println!("tractable: {}", db.is_tractable(&query));
    println!(
        "signature: {}  (scans needed: {})",
        db.signature(&query).expect("query is tractable"),
        db.signature(&query)
            .expect("query is tractable")
            .scan_count()
    );
    println!();

    for kind in [
        PlanKind::Lazy,
        PlanKind::Eager,
        PlanKind::Hybrid(vec!["Item".to_string()]),
        PlanKind::Mystiq,
    ] {
        let report = db.query(&query, kind.clone()).expect("plan executes");
        println!("plan {kind}:");
        for (tuple, confidence) in &report.confidences {
            println!("  {tuple}  confidence = {confidence:.6}");
        }
        println!(
            "  answer tuples: {:?}, distinct: {}, total time: {:?}",
            report.answer_tuples,
            report.distinct_tuples,
            report.total_time()
        );
        println!();
    }

    // The paper's hand computation (Example V.1) gives 0.0028 for 1995-01-10.
    let lazy = db.query(&query, PlanKind::Lazy).expect("plan executes");
    assert!((lazy.confidences[0].1 - 0.0028).abs() < 1e-9);
    println!("matches the paper's worked example: confidence 0.0028 ✓");
}
