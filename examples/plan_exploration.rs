//! Operator placement and plan-space exploration (Section V.B, Fig. 7).
//!
//! Reproduces Example V.6: placing probability-computation operators at
//! different nodes of a plan for the guiding query, showing how signatures
//! are restricted, split, and updated when parts of the answer have already
//! been aggregated below.
//!
//! Run with: `cargo run --example plan_exploration`

use std::collections::BTreeSet;

use pdb_query::cq::intro_query_q;
use pdb_query::reduct::FdReduct;
use pdb_query::FdSet;
use sprout_plan::placement::PlacementContext;

fn attrs(names: &[&str]) -> BTreeSet<String> {
    names.iter().map(|s| s.to_string()).collect()
}

fn main() {
    let q = intro_query_q().boolean_version();
    let reduct = FdReduct::compute(&q, &FdSet::empty());
    let ctx = PlacementContext::new(reduct.tree().expect("hierarchical"), FdSet::empty());
    println!("query signature: [{}]", ctx.query_signature());
    println!();

    // Plan (c), node p: the subplan joining only Cust and Ord.
    let ops = ctx
        .operator_signatures(&attrs(&["Cust", "Ord"]), &[])
        .expect("placement succeeds");
    println!("operator after Cust ⋈ Ord (plan (c), node p):");
    println!("  [{}]", render(&ops));

    // Plan (b): the subplan joining Ord and Item contains the full minimal
    // cover of {Ord, Item}, so the propagation step is valid.
    let ops = ctx
        .operator_signatures(&attrs(&["Ord", "Item"]), &[])
        .expect("placement succeeds");
    println!("operator after Ord ⋈ Item (plan (b)):");
    println!("  [{}]", render(&ops));

    // Plan (a): base-table operators have run below; the operator after
    // Ord ⋈ Item and the top operator adapt accordingly.
    let singles = [attrs(&["Item"]), attrs(&["Ord"]), attrs(&["Cust"])];
    let ops = ctx
        .operator_signatures(&attrs(&["Ord", "Item"]), &singles)
        .expect("placement succeeds");
    println!("operator after Ord ⋈ Item with [Item*],[Ord*],[Cust*] below (plan (a)):");
    println!("  [{}]", render(&ops));

    let mut reduced = singles.to_vec();
    reduced.push(attrs(&["Ord", "Item"]));
    let ops = ctx
        .operator_signatures(&attrs(&["Cust", "Ord", "Item"]), &reduced)
        .expect("placement succeeds");
    println!("top operator of plan (a):");
    println!("  [{}]", render(&ops));

    // With the TPC-H keys the same placements simplify (end of Section V.B).
    let fds = FdSet::new(vec![
        pdb_query::FunctionalDependency::on("Ord", &["okey"], &["ckey", "odate"]),
        pdb_query::FunctionalDependency::on("Cust", &["ckey"], &["cname"]),
    ]);
    let reduct = FdReduct::compute(&q, &fds);
    let ctx = PlacementContext::new(reduct.tree().expect("hierarchical"), fds);
    println!();
    println!(
        "with the TPC-H keys the query signature refines to [{}]",
        ctx.query_signature()
    );
    let ops = ctx
        .operator_signatures(&attrs(&["Ord", "Item"]), &[])
        .expect("placement succeeds");
    println!("operator after Ord ⋈ Item becomes [{}]", render(&ops));
}

fn render(ops: &[pdb_query::Signature]) -> String {
    ops.iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}
